"""Decoherence-limited fidelity model (paper Eq. 2).

The paper's error model attributes infidelity to decoherence over the gate
duration: ``F = exp(-duration / lifetime)``.  Durations are expressed in
normalised pulse units where a full iSWAP costs 1.0 and is calibrated to a
99% fidelity, so a circuit of total cost ``c`` has fidelity ``0.99 ** c``.
"""

from __future__ import annotations

import dataclasses
import math

#: Calibration point of the paper: an iSWAP (unit cost) has 99% fidelity.
DEFAULT_UNIT_FIDELITY = 0.99


@dataclasses.dataclass(frozen=True)
class ErrorModel:
    """Exponential-decay gate error model.

    Attributes:
        unit_fidelity: fidelity of a unit-cost (iSWAP-duration) pulse.
    """

    unit_fidelity: float = DEFAULT_UNIT_FIDELITY

    @property
    def decay_rate(self) -> float:
        """``duration / lifetime`` corresponding to one cost unit."""
        return -math.log(self.unit_fidelity)

    def gate_fidelity(self, cost: float) -> float:
        """Fidelity of a gate (or circuit) of normalised cost ``cost``."""
        return self.unit_fidelity**cost

    def circuit_fidelity(self, total_cost: float) -> float:
        """Alias of :meth:`gate_fidelity` for whole-circuit costs."""
        return self.gate_fidelity(total_cost)

    def infidelity(self, cost: float) -> float:
        return 1.0 - self.gate_fidelity(cost)

    def combined_fidelity(self, cost: float, decomposition_fidelity: float) -> float:
        """Total fidelity of an approximate decomposition.

        The product of the circuit (decoherence) fidelity and the
        approximation (decomposition) fidelity, which is the acceptance
        criterion of paper Algorithm 1.
        """
        return self.gate_fidelity(cost) * decomposition_fidelity


def relative_infidelity_reduction(before: float, after: float) -> float:
    """Relative decrease in infidelity going from ``before`` to ``after``."""
    infidelity_before = 1.0 - before
    if infidelity_before <= 0:
        return 0.0
    return (infidelity_before - (1.0 - after)) / infidelity_before
