"""Monte-Carlo Haar scores with approximate decomposition (paper Algorithm 1).

For each Haar-sampled target the exact decomposition cost (and its
decoherence fidelity) is computed from the coverage set; every *cheaper*
polytope is then checked for an approximation whose combined fidelity
(decomposition fidelity x shorter-circuit fidelity) beats the exact
solution.  The accepted cost per sample gives the approximate Haar score of
paper Table II, and the running mean reproduces the convergence traces of
Fig. 5.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.fidelity.error_model import ErrorModel
from repro.polytopes.coverage import CoverageSet
from repro.weyl.coordinates import canonical_trace_fidelity
from repro.weyl.haar import cached_haar_samples


@dataclasses.dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of an Algorithm-1 run.

    Attributes:
        basis: basis gate name.
        mirrored: whether mirror gates were allowed.
        approximate: whether approximate decompositions were allowed.
        haar_score: mean accepted cost.
        average_fidelity: mean accepted total fidelity.
        costs: per-sample accepted costs.
        fidelities: per-sample accepted total fidelities.
        approximations_accepted: samples where a cheaper approximate circuit won.
    """

    basis: str
    mirrored: bool
    approximate: bool
    haar_score: float
    average_fidelity: float
    costs: np.ndarray
    fidelities: np.ndarray
    approximations_accepted: int

    def running_mean(self) -> np.ndarray:
        """Running mean of the cost sequence (Fig. 5 convergence trace)."""
        return np.cumsum(self.costs) / np.arange(1, len(self.costs) + 1)


def approximate_gate_costs(
    coverage: CoverageSet,
    *,
    num_samples: int = 1000,
    seed: int = 2024,
    samples: np.ndarray | None = None,
    error_model: ErrorModel | None = None,
    allow_approximation: bool = True,
) -> MonteCarloResult:
    """Paper Algorithm 1: Haar score under (optional) approximate decomposition.

    Args:
        coverage: coverage set (mirror-inclusive or not) of the basis gate.
        num_samples: Monte Carlo iterations when ``samples`` is not given.
        seed: seed of the shared Haar stream.
        samples: precomputed Haar coordinate samples.
        error_model: decoherence model (default: iSWAP unit cost at 99%).
        allow_approximation: when ``False`` only exact decompositions are
            used (reproduces Table I instead of Table II).

    Returns:
        A :class:`MonteCarloResult`.
    """
    if samples is None:
        samples = cached_haar_samples(num_samples, seed)
    model = error_model if error_model is not None else ErrorModel()

    costs = np.empty(len(samples))
    fidelities = np.empty(len(samples))
    approximations = 0

    # All exact decomposition costs up front in one batched query.
    exact_costs = coverage.cost_of_many(samples)

    for index, target in enumerate(samples):
        exact_cost = float(exact_costs[index])
        exact_fidelity = model.gate_fidelity(exact_cost)
        best_cost = exact_cost
        best_fidelity = exact_fidelity
        if allow_approximation:
            for polytope in coverage.cheaper_polytopes(exact_cost):
                if polytope.cost <= 0:
                    continue
                nearest = polytope.nearest_point(target)
                decomposition_fidelity = canonical_trace_fidelity(nearest, target)
                total = model.combined_fidelity(polytope.cost, decomposition_fidelity)
                if total > best_fidelity + 1e-12:
                    best_fidelity = total
                    best_cost = polytope.cost
            if best_cost < exact_cost:
                approximations += 1
        costs[index] = best_cost
        fidelities[index] = best_fidelity

    return MonteCarloResult(
        basis=coverage.basis,
        mirrored=coverage.mirrored,
        approximate=allow_approximation,
        haar_score=float(costs.mean()),
        average_fidelity=float(fidelities.mean()),
        costs=costs,
        fidelities=fidelities,
        approximations_accepted=approximations,
    )


def strategy_comparison(
    exact: CoverageSet,
    mirrored: CoverageSet,
    *,
    num_samples: int = 1000,
    seed: int = 2024,
    error_model: ErrorModel | None = None,
) -> dict[str, MonteCarloResult]:
    """The four strategies of paper Fig. 5 on a shared sample stream."""
    samples = cached_haar_samples(num_samples, seed)
    return {
        "exact": approximate_gate_costs(
            exact, samples=samples, error_model=error_model, allow_approximation=False
        ),
        "approximate": approximate_gate_costs(
            exact, samples=samples, error_model=error_model, allow_approximation=True
        ),
        "exact+mirrors": approximate_gate_costs(
            mirrored, samples=samples, error_model=error_model, allow_approximation=False
        ),
        "approximate+mirrors": approximate_gate_costs(
            mirrored, samples=samples, error_model=error_model, allow_approximation=True
        ),
    }
