"""The mirror-gate transform (paper Eq. 1).

The *mirror* of a two-qubit gate ``U`` is ``U' = SWAP . U`` — the gate that,
followed by exchanging its output wires, implements the same operation as
``U``.  In Weyl coordinates the transform has the closed form of Eq. 1 of
the paper, which lets MIRAGE evaluate the decomposition cost of a mirror
candidate without any matrix arithmetic.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.linalg.constants import SWAP
from repro.weyl.canonical import (
    PI4,
    canonicalize_coordinate,
    canonicalize_coordinates_many,
)
from repro.weyl.coordinates import WeylCoordinate


def mirror_coordinate(
    coordinate: Iterable[float],
) -> tuple[float, float, float]:
    """Weyl coordinate of the mirror gate ``SWAP . U`` given the coordinate of ``U``.

    Implements paper Eq. 1 in the positive canonical basis::

        (a', b', c') = (pi/4 + c, pi/4 - b, pi/4 - a)   if a <= pi/4
                       (pi/4 - c, pi/4 - b, a - pi/4)   otherwise

    The result is re-canonicalised into the Weyl chamber (the raw formula
    can produce an unsorted triple).

    Notable fixed relationships::

        CNOT   (pi/4, 0, 0)        ->  iSWAP (pi/4, pi/4, 0)
        iSWAP                      ->  CNOT
        identity                   ->  SWAP
        SWAP                       ->  identity
        CPHASE(theta)              ->  pSWAP(theta)
    """
    a, b, c = (float(x) for x in coordinate)
    if a <= PI4 + 1e-12:
        raw = (PI4 + c, PI4 - b, PI4 - a)
    else:
        raw = (PI4 - c, PI4 - b, a - PI4)
    return canonicalize_coordinate(raw)


def mirror_coordinates_many(coordinates: np.ndarray) -> np.ndarray:
    """Vectorised :func:`mirror_coordinate` over an ``(n, 3)`` array.

    Applies the same branch of Eq. 1 per row and re-canonicalises the whole
    batch in one shot, yielding values element-wise identical to the scalar
    function.
    """
    coords = np.asarray(coordinates, dtype=float)
    if coords.size == 0:
        return np.zeros((0, 3))
    coords = np.atleast_2d(coords)
    a = coords[:, 0]
    b = coords[:, 1]
    c = coords[:, 2]
    low_branch = a <= PI4 + 1e-12
    raw = np.empty_like(coords)
    raw[:, 0] = np.where(low_branch, PI4 + c, PI4 - c)
    raw[:, 1] = PI4 - b
    raw[:, 2] = np.where(low_branch, PI4 - a, a - PI4)
    return canonicalize_coordinates_many(raw)


def mirror_weyl(coordinate: WeylCoordinate) -> WeylCoordinate:
    """:class:`WeylCoordinate` version of :func:`mirror_coordinate`."""
    return WeylCoordinate(*mirror_coordinate(coordinate.to_tuple()))


def mirror_unitary(unitary: np.ndarray) -> np.ndarray:
    """Matrix of the mirror gate ``SWAP @ U``."""
    return SWAP @ np.asarray(unitary, dtype=complex)


def is_self_mirror(coordinate: Iterable[float], atol: float = 1e-7) -> bool:
    """Whether a gate's mirror lies in the same local-equivalence class.

    Self-mirror points are the fixed plane of Eq. 1; the B gate
    ``(pi/4, pi/8, 0)`` is the best-known example.
    """
    original = canonicalize_coordinate(coordinate)
    mirrored = mirror_coordinate(coordinate)
    return bool(np.allclose(original, mirrored, atol=atol))
