"""Haar-distributed samples of Weyl coordinates.

All Haar-weighted quantities in the paper (coverage volumes, Haar scores,
Algorithm 1) reduce to expectations over the distribution that the Haar
measure on U(4) induces on the Weyl chamber.  This module provides both a
direct sampler (sample a Haar unitary, extract its coordinate) and the
closed-form density, which is used as a cross-check and for importance
weighting of uniform chamber grids.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.linalg.random import _as_rng, haar_unitary
from repro.weyl.coordinates import weyl_coordinates_many


def haar_coordinate_sample(
    num_samples: int, seed: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample Weyl coordinates of Haar-random two-qubit unitaries.

    Returns an ``(num_samples, 3)`` array of canonical coordinates.
    """
    rng = _as_rng(seed)
    unitaries = np.empty((num_samples, 4, 4), dtype=complex)
    for index in range(num_samples):
        unitaries[index] = haar_unitary(4, rng)
    return weyl_coordinates_many(unitaries)


@lru_cache(maxsize=8)
def cached_haar_samples(num_samples: int, seed: int = 2024) -> np.ndarray:
    """Memoised Haar coordinate samples shared across analyses.

    The same fixed sample set is reused by coverage-volume and Haar-score
    estimators so that comparisons between basis gates are paired (lower
    variance on differences), mirroring the paper's use of a single Monte
    Carlo stream per experiment.
    """
    samples = haar_coordinate_sample(num_samples, seed)
    samples.setflags(write=False)
    return samples


def haar_density(a: float, b: float, c: float) -> float:
    """Unnormalised Haar density on the Weyl chamber.

    In the unhalved canonical angles ``c_i = 2 x_i`` the induced measure is
    proportional to ``prod_{i<j} (cos c_i - cos c_j)^2`` restricted to the
    chamber (Zyczkowski-style Weyl integration formula for U(4)/U(2)xU(2)).
    The normalisation constant is irrelevant for the weighted averages we
    compute; :func:`haar_density_grid` normalises numerically.
    """
    c1, c2, c3 = 2 * a, 2 * b, 2 * c
    f1 = math.cos(c1) - math.cos(c2)
    f2 = math.cos(c1) - math.cos(c3)
    f3 = math.cos(c2) - math.cos(c3)
    return (f1 * f1) * (f2 * f2) * (f3 * f3)


def haar_density_grid(
    resolution: int = 40,
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform chamber grid together with normalised Haar weights.

    Returns:
        ``(points, weights)`` where ``points`` is ``(m, 3)`` and ``weights``
        sums to one.  Useful for deterministic (non-Monte-Carlo) integration
        of membership indicators.
    """
    from repro.weyl.canonical import PI2, PI4, in_weyl_chamber

    a_axis = np.linspace(0, PI2, 2 * resolution, endpoint=False)
    b_axis = np.linspace(0, PI4, resolution, endpoint=False)
    c_axis = np.linspace(0, PI4, resolution, endpoint=False)
    step = (
        (a_axis[1] - a_axis[0])
        * (b_axis[1] - b_axis[0])
        * (c_axis[1] - c_axis[0])
    )
    points = []
    weights = []
    for a in a_axis + (a_axis[1] - a_axis[0]) / 2:
        for b in b_axis + (b_axis[1] - b_axis[0]) / 2:
            if b > a:
                continue
            for c in c_axis + (c_axis[1] - c_axis[0]) / 2:
                if c > b:
                    continue
                if not in_weyl_chamber((a, b, c)):
                    continue
                points.append((a, b, c))
                weights.append(haar_density(a, b, c) * step)
    points_arr = np.array(points, dtype=float)
    weights_arr = np.array(weights, dtype=float)
    weights_arr /= weights_arr.sum()
    return points_arr, weights_arr
