"""Makhlin local invariants of two-qubit unitaries.

Two two-qubit unitaries are locally equivalent (related by single-qubit
gates) if and only if their Makhlin invariants ``(g1, g2, g3)`` coincide.
They are used here to *verify* candidate Weyl coordinates extracted from a
unitary — the eigenvalue-based coordinate extraction has branch ambiguities
that the invariants resolve unambiguously.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.linalg.constants import MAGIC, MAGIC_DAG


def makhlin_invariants(unitary: np.ndarray) -> tuple[float, float, float]:
    """Makhlin invariants ``(g1, g2, g3)`` of a two-qubit unitary.

    Following Makhlin (2002): with ``m = (M^dag U M)^T (M^dag U M)`` in the
    magic basis,

        g1 + i g2 = Tr(m)^2 / (16 det U)
        g3        = (Tr(m)^2 - Tr(m^2)) / (4 det U)

    ``g3`` is real for any unitary; tiny imaginary parts are discarded.
    """
    unitary = np.asarray(unitary, dtype=complex)
    det = np.linalg.det(unitary)
    um = MAGIC_DAG @ unitary @ MAGIC
    m = um.T @ um
    tr = np.trace(m)
    tr2 = np.trace(m @ m)
    g12 = tr**2 / (16 * det)
    g3 = (tr**2 - tr2) / (4 * det)
    return float(g12.real), float(g12.imag), float(g3.real)


def makhlin_from_coordinate(
    coordinate: Iterable[float],
) -> tuple[float, float, float]:
    """Makhlin invariants of the canonical gate ``CAN(a, b, c)``.

    Uses the closed form in terms of the *unhalved* canonical angles
    ``c_i = 2 * coordinate_i`` (Zhang et al. 2003):

        g1 = cos^2 c1 cos^2 c2 cos^2 c3 - sin^2 c1 sin^2 c2 sin^2 c3
        g2 = (1/4) sin 2c1 sin 2c2 sin 2c3
        g3 = 4 g1 - cos 2c1 cos 2c2 cos 2c3
    """
    a, b, c = (2.0 * float(x) for x in coordinate)
    cos_prod = math.cos(a) * math.cos(b) * math.cos(c)
    sin_prod = math.sin(a) * math.sin(b) * math.sin(c)
    g1 = cos_prod**2 - sin_prod**2
    g2 = 0.25 * math.sin(2 * a) * math.sin(2 * b) * math.sin(2 * c)
    g3 = 4 * g1 - math.cos(2 * a) * math.cos(2 * b) * math.cos(2 * c)
    return g1, g2, g3


def makhlin_from_coordinates_many(coordinates: np.ndarray) -> np.ndarray:
    """Vectorised :func:`makhlin_from_coordinate` over an ``(..., 3)`` array.

    Returns an array of the same leading shape with a trailing axis of
    ``(g1, g2, g3)``.  Used by the batched Weyl-coordinate extraction to
    score all candidate triples in one shot.
    """
    doubled = 2.0 * np.asarray(coordinates, dtype=float)
    cos_prod = np.cos(doubled).prod(axis=-1)
    sin_prod = np.sin(doubled).prod(axis=-1)
    g1 = cos_prod**2 - sin_prod**2
    g2 = 0.25 * np.sin(2 * doubled).prod(axis=-1)
    g3 = 4 * g1 - np.cos(2 * doubled).prod(axis=-1)
    return np.stack([g1, g2, g3], axis=-1)


def invariants_close(
    left: tuple[float, float, float],
    right: tuple[float, float, float],
    atol: float = 1e-6,
) -> bool:
    """Whether two invariant triples agree within ``atol``."""
    return bool(np.allclose(left, right, atol=atol))


def locally_equivalent(
    unitary_a: np.ndarray, unitary_b: np.ndarray, atol: float = 1e-6
) -> bool:
    """Whether two two-qubit unitaries are equal up to single-qubit gates."""
    return invariants_close(
        makhlin_invariants(unitary_a), makhlin_invariants(unitary_b), atol=atol
    )
