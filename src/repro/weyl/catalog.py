"""Catalog of named two-qubit gates and their Weyl coordinates.

This is the reproduction's equivalent of the session equivalence library the
paper extends: a single place that knows the coordinate (and matrix) of
every gate the transpiler and the analysis scripts talk about.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.linalg.constants import (
    CNOT,
    CZ,
    ISWAP,
    SWAP,
    cphase,
    iswap_power,
    pswap,
)
from repro.weyl.canonical import PI4, PI8
from repro.weyl.coordinates import WeylCoordinate

# ---------------------------------------------------------------------------
# Fixed, named coordinates
# ---------------------------------------------------------------------------

IDENTITY_COORD = WeylCoordinate(0.0, 0.0, 0.0)
CNOT_COORD = WeylCoordinate(PI4, 0.0, 0.0)
ISWAP_COORD = WeylCoordinate(PI4, PI4, 0.0)
SWAP_COORD = WeylCoordinate(PI4, PI4, PI4)
SQRT_ISWAP_COORD = WeylCoordinate(PI8, PI8, 0.0)
B_GATE_COORD = WeylCoordinate(PI4, PI8, 0.0)
SQRT_SWAP_COORD = WeylCoordinate(PI8, PI8, PI8)

NAMED_COORDINATES: dict[str, WeylCoordinate] = {
    "id": IDENTITY_COORD,
    "cx": CNOT_COORD,
    "cz": CNOT_COORD,
    "cnot": CNOT_COORD,
    "iswap": ISWAP_COORD,
    "swap": SWAP_COORD,
    "sqrt_iswap": SQRT_ISWAP_COORD,
    "siswap": SQRT_ISWAP_COORD,
    "b": B_GATE_COORD,
    "sqrt_swap": SQRT_SWAP_COORD,
}

NAMED_MATRICES: dict[str, np.ndarray] = {
    "cx": CNOT,
    "cnot": CNOT,
    "cz": CZ,
    "iswap": ISWAP,
    "swap": SWAP,
    "sqrt_iswap": iswap_power(0.5),
}


def iswap_fraction_coordinate(exponent: float) -> WeylCoordinate:
    """Coordinate of ``iSWAP ** exponent`` (the XY family).

    ``iSWAP**t`` sits at ``(t*pi/4, t*pi/4, 0)`` for ``t`` in ``[0, 1]``.
    """
    if not 0.0 <= exponent <= 1.0:
        raise ValueError("iSWAP exponent must lie in [0, 1]")
    return WeylCoordinate.from_raw(
        (exponent * PI4, exponent * PI4, 0.0)
    )


def cphase_coordinate(theta: float) -> WeylCoordinate:
    """Coordinate of ``CPHASE(theta)``: ``(|theta|/4 mod ..., 0, 0)``."""
    return WeylCoordinate.from_raw((theta / 4.0, 0.0, 0.0))


def pswap_coordinate(theta: float) -> WeylCoordinate:
    """Coordinate of the parametric SWAP ``SWAP . CPHASE(theta)``."""
    return WeylCoordinate.from_unitary(pswap(theta))


def nth_root_iswap_coordinate(n: int) -> WeylCoordinate:
    """Coordinate of the ``n``-th root of iSWAP (``n >= 1``)."""
    if n < 1:
        raise ValueError("n must be a positive integer")
    return iswap_fraction_coordinate(1.0 / n)


#: Callable matrix constructors for parametric families, keyed by name.
PARAMETRIC_MATRICES: dict[str, Callable[[float], np.ndarray]] = {
    "cphase": cphase,
    "pswap": pswap,
    "iswap_power": iswap_power,
}


def basis_gate_cost(basis: str) -> float:
    """Normalised pulse cost of a named basis gate (iSWAP == 1.0).

    The paper's convention (Section III-C / V): an iSWAP costs 1.0, its
    n-th roots cost 1/n, and a CNOT-family basis gate costs 1.0 (it needs
    the full interaction strength of an iSWAP-class pulse).
    """
    name = basis.lower()
    if name in {"iswap"}:
        return 1.0
    if name in {"sqrt_iswap", "siswap", "iswap_1_2"}:
        return 0.5
    if name in {"cbrt_iswap", "iswap_1_3"}:
        return 1.0 / 3.0
    if name in {"qtrt_iswap", "fourth_root_iswap", "iswap_1_4"}:
        return 0.25
    if name in {"cx", "cnot", "cz"}:
        return 1.0
    match = _parse_iswap_root(name)
    if match is not None:
        return 1.0 / match
    raise ValueError(f"unknown basis gate {basis!r}")


def _parse_iswap_root(name: str) -> int | None:
    """Parse names like ``iswap_1_5`` meaning the fifth root of iSWAP."""
    parts = name.split("_")
    if len(parts) == 3 and parts[0] == "iswap" and parts[1] == "1":
        try:
            return int(parts[2])
        except ValueError:
            return None
    return None


def basis_gate_coordinate(basis: str) -> WeylCoordinate:
    """Weyl coordinate of a named basis gate."""
    name = basis.lower()
    if name in NAMED_COORDINATES:
        return NAMED_COORDINATES[name]
    if name in {"iswap_1_2"}:
        return SQRT_ISWAP_COORD
    if name in {"cbrt_iswap", "iswap_1_3"}:
        return nth_root_iswap_coordinate(3)
    if name in {"qtrt_iswap", "fourth_root_iswap", "iswap_1_4"}:
        return nth_root_iswap_coordinate(4)
    root = _parse_iswap_root(name)
    if root is not None:
        return nth_root_iswap_coordinate(root)
    raise ValueError(f"unknown basis gate {basis!r}")


def basis_gate_matrix(basis: str) -> np.ndarray:
    """Unitary matrix of a named basis gate."""
    name = basis.lower()
    if name in NAMED_MATRICES:
        return NAMED_MATRICES[name]
    root = _parse_iswap_root(name)
    if root is not None:
        return iswap_power(1.0 / root)
    if name in {"cbrt_iswap"}:
        return iswap_power(1.0 / 3.0)
    if name in {"qtrt_iswap", "fourth_root_iswap"}:
        return iswap_power(0.25)
    raise ValueError(f"unknown basis gate {basis!r}")


def coordinate_of_named_gate(name: str, *params: float) -> WeylCoordinate:
    """Coordinate of a named (possibly parametric) two-qubit gate.

    Supports the gate names used by :mod:`repro.circuits.gates`:
    ``cx, cz, swap, iswap, cp/cphase, rzz, rxx, ryy, czz`` etc.
    """
    lowered = name.lower()
    if lowered in NAMED_COORDINATES:
        return NAMED_COORDINATES[lowered]
    if lowered in {"cp", "cphase", "cu1"}:
        return cphase_coordinate(params[0])
    if lowered in {"rzz", "rxx", "ryy"}:
        # exp(-i theta/2 PP) is locally equivalent to CAN(theta/2, 0, 0).
        return WeylCoordinate.from_raw((params[0] / 2.0, 0.0, 0.0))
    if lowered == "pswap":
        return pswap_coordinate(params[0])
    if lowered in {"xx_plus_yy", "xy"}:
        return WeylCoordinate.from_raw((params[0] / 4.0, params[0] / 4.0, 0.0))
    raise ValueError(f"no coordinate rule for gate {name!r}")


def max_exact_depth(basis: str) -> int:
    """Number of basis applications guaranteeing full Weyl-chamber coverage.

    The worst-case two-qubit target is SWAP, whose total interaction
    content corresponds to 1.5 iSWAP units; a basis gate of unit cost ``t``
    therefore needs ``ceil(1.5 / t)`` applications (3 for CNOT / sqrt(iSWAP),
    5 for the cube root, 6 for the fourth root, 3 for the full iSWAP which
    cannot do better than one SWAP per three applications).
    """
    cost = basis_gate_cost(basis)
    if cost >= 1.0:
        return 3
    return int(math.ceil(1.5 / cost - 1e-9))
