"""Extraction of Weyl (canonical) coordinates from two-qubit unitaries.

Every two-qubit unitary ``U`` is locally equivalent to a canonical gate
``CAN(a, b, c)``; the triple ``(a, b, c)``, reduced to the canonical Weyl
chamber, is the *Weyl coordinate* of ``U``.  MIRAGE performs all of its
decomposition-cost reasoning on these coordinates, never on raw matrices
(paper Section VI-C), so this module is on the transpiler's hot path and the
expensive extraction is memoised by callers (see
:mod:`repro.polytopes.cache`).

The extraction algorithm follows the standard magic-basis construction: the
eigenvalue phases of ``(M^dag U M)^T (M^dag U M)`` are, up to branch and
ordering ambiguities, the four combinations ``±a ± b ± c``.  Rather than
reproduce the delicate branch-folding logic of existing transpilers, we
enumerate the small set of candidate pairings and accept the first whose
Makhlin invariants match those of ``U`` exactly — a self-verifying approach
that is robust for degenerate spectra (CNOT, SWAP, identity, ...).
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Iterable

import numpy as np

from repro.exceptions import WeylError
from repro.linalg.constants import MAGIC, MAGIC_DAG
from repro.weyl.canonical import (
    PI4,
    canonical_gate,
    canonicalize_coordinate,
    in_weyl_chamber,
)
from repro.weyl.invariants import (
    invariants_close,
    makhlin_from_coordinate,
    makhlin_invariants,
)


@dataclasses.dataclass(frozen=True, order=True)
class WeylCoordinate:
    """A point of the canonical Weyl chamber.

    Instances are immutable, hashable (useful as cache keys once rounded)
    and ordered lexicographically.
    """

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not in_weyl_chamber((self.a, self.b, self.c), atol=1e-6):
            raise WeylError(
                f"({self.a}, {self.b}, {self.c}) is not inside the Weyl chamber"
            )

    # -- constructors -------------------------------------------------

    @classmethod
    def from_raw(cls, coordinate: Iterable[float]) -> "WeylCoordinate":
        """Canonicalise an arbitrary triple and wrap it."""
        a, b, c = canonicalize_coordinate(coordinate)
        return cls(a, b, c)

    @classmethod
    def from_unitary(cls, unitary: np.ndarray) -> "WeylCoordinate":
        """Extract the coordinate of a 4x4 unitary."""
        return cls.from_raw(weyl_coordinates(unitary))

    # -- views ---------------------------------------------------------

    def to_tuple(self) -> tuple[float, float, float]:
        return (self.a, self.b, self.c)

    def to_array(self) -> np.ndarray:
        return np.array([self.a, self.b, self.c], dtype=float)

    def rounded(self, decimals: int = 9) -> tuple[float, float, float]:
        """Rounded tuple suitable for use as a dictionary cache key."""
        return (
            round(self.a, decimals),
            round(self.b, decimals),
            round(self.c, decimals),
        )

    def canonical_unitary(self) -> np.ndarray:
        """The canonical-gate representative ``CAN(a, b, c)``."""
        return canonical_gate(self.a, self.b, self.c)

    # -- predicates ----------------------------------------------------

    def is_identity(self, atol: float = 1e-7) -> bool:
        return max(abs(self.a), abs(self.b), abs(self.c)) <= atol

    def is_swap(self, atol: float = 1e-7) -> bool:
        return (
            abs(self.a - PI4) <= atol
            and abs(self.b - PI4) <= atol
            and abs(self.c - PI4) <= atol
        )

    def isclose(self, other: "WeylCoordinate", atol: float = 1e-6) -> bool:
        return bool(
            np.allclose(self.to_tuple(), other.to_tuple(), atol=atol)
        )

    # -- convenience ---------------------------------------------------

    def __iter__(self):
        return iter((self.a, self.b, self.c))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeylCoordinate({self.a:.6f}, {self.b:.6f}, {self.c:.6f})"


def _candidate_coordinates(thetas: np.ndarray) -> Iterable[tuple[float, float, float]]:
    """Yield candidate (a, b, c) triples from the four eigen-phase halves.

    The phases satisfy (up to ordering and mod-pi branches)

        theta_1 = a - b + c,  theta_2 = a + b - c,
        theta_3 = -a + b + c, theta_4 = -(a + b + c)

    so each ordered choice of three of them produces a candidate via the
    linear map ``a = (t1 + t2)/2, b = (t2 + t3)/2, c = (t1 + t3)/2``.
    Branch shifts of +pi are folded away later by canonicalisation.
    """
    for selection in itertools.permutations(range(4), 3):
        t1, t2, t3 = (thetas[i] for i in selection)
        yield ((t1 + t2) / 2.0, (t2 + t3) / 2.0, (t1 + t3) / 2.0)
    # Branch-shifted variants (rarely needed, but cheap to enumerate) — add
    # pi to one of the selected phases.
    for selection in itertools.permutations(range(4), 3):
        base = [thetas[i] for i in selection]
        for shift_index in range(3):
            shifted = list(base)
            shifted[shift_index] += math.pi
            t1, t2, t3 = shifted
            yield ((t1 + t2) / 2.0, (t2 + t3) / 2.0, (t1 + t3) / 2.0)


def weyl_coordinates(
    unitary: np.ndarray, atol: float = 1e-6
) -> tuple[float, float, float]:
    """Canonical Weyl coordinates of a two-qubit unitary.

    Args:
        unitary: a 4x4 unitary matrix (any global phase).
        atol: tolerance used when matching Makhlin invariants.

    Returns:
        The canonical ``(a, b, c)`` triple inside the Weyl chamber.

    Raises:
        WeylError: if no candidate reproduces the unitary's local invariants
            (which indicates a non-unitary input).
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4):
        raise WeylError(f"expected a 4x4 matrix, got shape {unitary.shape}")

    det = np.linalg.det(unitary)
    if abs(abs(det) - 1.0) > 1e-6:
        raise WeylError("matrix is not unitary (|det| != 1)")
    target_invariants = makhlin_invariants(unitary)
    su = unitary / det**0.25

    um = MAGIC_DAG @ su @ MAGIC
    gamma = um.T @ um
    eigenvalues = np.linalg.eigvals(gamma)
    # Normalise away numerical drift off the unit circle.
    eigenvalues = eigenvalues / np.abs(eigenvalues)
    thetas = np.angle(eigenvalues) / 2.0

    best_fallback: tuple[float, tuple[float, float, float]] | None = None
    for raw in _candidate_coordinates(thetas):
        candidate = canonicalize_coordinate(raw)
        cand_inv = makhlin_from_coordinate(candidate)
        if invariants_close(cand_inv, target_invariants, atol=atol):
            return candidate
        error = float(
            np.linalg.norm(np.subtract(cand_inv, target_invariants))
        )
        if best_fallback is None or error < best_fallback[0]:
            best_fallback = (error, candidate)

    # Accept a slightly looser match before giving up — the invariant
    # comparison amplifies coordinate error near chamber edges.
    if best_fallback is not None and best_fallback[0] < 1e-3:
        return best_fallback[1]
    raise WeylError("could not determine Weyl coordinates for the given matrix")


def coordinate_distance(
    left: Iterable[float], right: Iterable[float]
) -> float:
    """Euclidean distance between two canonical coordinates."""
    return float(
        np.linalg.norm(np.subtract(tuple(left), tuple(right)))
    )


def canonical_trace_fidelity(
    left: Iterable[float], right: Iterable[float]
) -> float:
    """Average-gate-fidelity proxy between two canonical classes.

    The trace overlap between ``CAN(x)`` and ``CAN(y)`` evaluated at the
    coordinate difference ``d = x - y``::

        Tr(CAN(y)^dag CAN(x)) = 4 * cos(da) cos(db) cos(dc)
                                 - 4 i sin(da) sin(db) sin(dc)

    which we convert to an average gate fidelity ``(|Tr|^2/16 * 4 + 1)/5``.
    This is the decomposition-fidelity estimate used by the approximate
    decomposition search; it is exact when the optimal local corrections are
    the identity and a tight, cheap proxy otherwise.
    """
    da, db, dc = np.subtract(tuple(left), tuple(right))
    real = math.cos(da) * math.cos(db) * math.cos(dc)
    imag = math.sin(da) * math.sin(db) * math.sin(dc)
    trace_sq = 16.0 * (real * real + imag * imag)
    entanglement_fidelity = trace_sq / 16.0
    return float((4.0 * entanglement_fidelity + 1.0) / 5.0)
