"""Extraction of Weyl (canonical) coordinates from two-qubit unitaries.

Every two-qubit unitary ``U`` is locally equivalent to a canonical gate
``CAN(a, b, c)``; the triple ``(a, b, c)``, reduced to the canonical Weyl
chamber, is the *Weyl coordinate* of ``U``.  MIRAGE performs all of its
decomposition-cost reasoning on these coordinates, never on raw matrices
(paper Section VI-C), so this module is on the transpiler's hot path and the
expensive extraction is memoised by callers (see
:mod:`repro.polytopes.cache`).

The extraction algorithm follows the standard magic-basis construction: the
eigenvalue phases of ``(M^dag U M)^T (M^dag U M)`` are, up to branch and
ordering ambiguities, the four combinations ``±a ± b ± c``.  Rather than
reproduce the delicate branch-folding logic of existing transpilers, we
enumerate the small set of candidate pairings and accept the first whose
Makhlin invariants match those of ``U`` exactly — a self-verifying approach
that is robust for degenerate spectra (CNOT, SWAP, identity, ...).
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Iterable

import numpy as np

from repro.exceptions import WeylError
from repro.linalg.constants import MAGIC, MAGIC_DAG
from repro.weyl.canonical import (
    PI4,
    canonical_gate,
    canonicalize_coordinate,
    canonicalize_coordinates_many,
    in_weyl_chamber,
)
from repro.weyl.invariants import makhlin_from_coordinates_many


@dataclasses.dataclass(frozen=True, order=True)
class WeylCoordinate:
    """A point of the canonical Weyl chamber.

    Instances are immutable, hashable (useful as cache keys once rounded)
    and ordered lexicographically.
    """

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not in_weyl_chamber((self.a, self.b, self.c), atol=1e-6):
            raise WeylError(
                f"({self.a}, {self.b}, {self.c}) is not inside the Weyl chamber"
            )

    # -- constructors -------------------------------------------------

    @classmethod
    def from_raw(cls, coordinate: Iterable[float]) -> "WeylCoordinate":
        """Canonicalise an arbitrary triple and wrap it."""
        a, b, c = canonicalize_coordinate(coordinate)
        return cls(a, b, c)

    @classmethod
    def from_unitary(cls, unitary: np.ndarray) -> "WeylCoordinate":
        """Extract the coordinate of a 4x4 unitary."""
        return cls.from_raw(weyl_coordinates(unitary))

    # -- views ---------------------------------------------------------

    def to_tuple(self) -> tuple[float, float, float]:
        return (self.a, self.b, self.c)

    def to_array(self) -> np.ndarray:
        return np.array([self.a, self.b, self.c], dtype=float)

    def rounded(self, decimals: int = 9) -> tuple[float, float, float]:
        """Rounded tuple suitable for use as a dictionary cache key."""
        return (
            round(self.a, decimals),
            round(self.b, decimals),
            round(self.c, decimals),
        )

    def canonical_unitary(self) -> np.ndarray:
        """The canonical-gate representative ``CAN(a, b, c)``."""
        return canonical_gate(self.a, self.b, self.c)

    # -- predicates ----------------------------------------------------

    def is_identity(self, atol: float = 1e-7) -> bool:
        return max(abs(self.a), abs(self.b), abs(self.c)) <= atol

    def is_swap(self, atol: float = 1e-7) -> bool:
        return (
            abs(self.a - PI4) <= atol
            and abs(self.b - PI4) <= atol
            and abs(self.c - PI4) <= atol
        )

    def isclose(self, other: "WeylCoordinate", atol: float = 1e-6) -> bool:
        return bool(
            np.allclose(self.to_tuple(), other.to_tuple(), atol=atol)
        )

    # -- convenience ---------------------------------------------------

    def __iter__(self):
        return iter((self.a, self.b, self.c))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeylCoordinate({self.a:.6f}, {self.b:.6f}, {self.c:.6f})"


def _build_candidate_tables() -> tuple[np.ndarray, np.ndarray]:
    """Precompute the 96 candidate selections as index/shift tables.

    Candidate ``k`` selects three of the four eigen-phase halves
    (``_CANDIDATE_SELECTION[k]``) and adds a branch shift
    (``_CANDIDATE_SHIFT[k]``, zero or ``pi`` per slot).  The enumeration
    order matches the historical generator exactly: the 24 unshifted
    permutations first, then for each permutation the three single-slot
    ``+pi`` shifts.
    """
    permutations = list(itertools.permutations(range(4), 3))
    selections: list[tuple[int, int, int]] = list(permutations)
    shifts: list[tuple[float, float, float]] = [(0.0, 0.0, 0.0)] * len(permutations)
    for selection in permutations:
        for shift_index in range(3):
            shift = [0.0, 0.0, 0.0]
            shift[shift_index] = math.pi
            selections.append(selection)
            shifts.append(tuple(shift))
    return np.array(selections, dtype=np.intp), np.array(shifts, dtype=float)


#: Index/shift tables enumerating the 96 candidate (a, b, c) pairings.
_CANDIDATE_SELECTION, _CANDIDATE_SHIFT = _build_candidate_tables()


def _candidate_batch(thetas: np.ndarray) -> np.ndarray:
    """All 96 candidate triples of each theta row, as one numpy batch.

    The phases satisfy (up to ordering and mod-pi branches)

        theta_1 = a - b + c,  theta_2 = a + b - c,
        theta_3 = -a + b + c, theta_4 = -(a + b + c)

    so each ordered choice of three of them produces a candidate via the
    linear map ``a = (t1 + t2)/2, b = (t2 + t3)/2, c = (t1 + t3)/2``.
    Branch shifts of +pi are folded away later by canonicalisation.

    Args:
        thetas: ``(m, 4)`` array of eigen-phase halves.

    Returns:
        ``(m, 96, 3)`` array of raw (un-canonicalised) candidate triples.
    """
    selected = thetas[:, _CANDIDATE_SELECTION] + _CANDIDATE_SHIFT[None, :, :]
    t1 = selected[..., 0]
    t2 = selected[..., 1]
    t3 = selected[..., 2]
    return np.stack(
        [(t1 + t2) / 2.0, (t2 + t3) / 2.0, (t1 + t3) / 2.0], axis=-1
    )


def _coordinates_from_thetas(
    thetas: np.ndarray, target_invariants: np.ndarray, atol: float
) -> np.ndarray:
    """Resolve canonical coordinates for a batch of theta rows.

    For each row, all 96 candidate pairings are canonicalised and their
    Makhlin invariants compared against the target in one numpy batch; the
    first matching candidate (in the historical enumeration order) wins, so
    the result is element-wise identical to the former per-candidate Python
    loop.

    Args:
        thetas: ``(m, 4)`` eigen-phase halves.
        target_invariants: ``(m, 3)`` Makhlin invariants of the unitaries.
        atol: invariant matching tolerance.

    Returns:
        ``(m, 3)`` canonical coordinates.

    Raises:
        WeylError: if some row has no candidate within the loose fallback
            tolerance (which indicates a non-unitary input).
    """
    m = len(thetas)
    raw = _candidate_batch(thetas)
    targets = np.asarray(target_invariants, dtype=float).reshape(m, 1, 3)
    out = np.empty((m, 3))
    matched = np.zeros(m, dtype=bool)
    # The unshifted permutations (first 24 candidates) almost always contain
    # the match, so they are scored first and the 72 branch-shifted variants
    # are only evaluated for rows still unresolved — the batched analogue of
    # the early exit the former per-candidate loop had.
    for start, stop in ((0, 24), (24, 96)):
        pending = np.flatnonzero(~matched)
        if pending.size == 0:
            break
        chunk = canonicalize_coordinates_many(
            raw[pending, start:stop].reshape(-1, 3)
        ).reshape(len(pending), stop - start, 3)
        invariants = makhlin_from_coordinates_many(chunk)
        chunk_targets = targets[pending]
        # Same tolerance semantics as np.allclose (used by invariants_close).
        close = np.all(
            np.abs(invariants - chunk_targets)
            <= atol + 1e-5 * np.abs(chunk_targets),
            axis=-1,
        )
        hit = close.any(axis=1)
        first = np.argmax(close, axis=1)
        rows = pending[hit]
        out[rows] = chunk[hit, first[hit]]
        matched[rows] = True

    if not matched.all():
        # Accept a slightly looser match before giving up — the invariant
        # comparison amplifies coordinate error near chamber edges.  Only
        # the unmatched rows re-score their 96 candidates.
        unmatched = np.flatnonzero(~matched)
        candidates = canonicalize_coordinates_many(
            raw[unmatched].reshape(-1, 3)
        ).reshape(len(unmatched), 96, 3)
        invariants = makhlin_from_coordinates_many(candidates)
        errors = np.linalg.norm(invariants - targets[unmatched], axis=-1)
        for position, index in enumerate(unmatched):
            best = int(np.argmin(errors[position]))
            if errors[position, best] < 1e-3:
                out[index] = candidates[position, best]
            else:
                raise WeylError(
                    "could not determine Weyl coordinates for the given matrix"
                )
    return out


def weyl_coordinates(
    unitary: np.ndarray, atol: float = 1e-6
) -> tuple[float, float, float]:
    """Canonical Weyl coordinates of a two-qubit unitary.

    Args:
        unitary: a 4x4 unitary matrix (any global phase).
        atol: tolerance used when matching Makhlin invariants.

    Returns:
        The canonical ``(a, b, c)`` triple inside the Weyl chamber.

    Raises:
        WeylError: if no candidate reproduces the unitary's local invariants
            (which indicates a non-unitary input).
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4):
        raise WeylError(f"expected a 4x4 matrix, got shape {unitary.shape}")
    coordinate = weyl_coordinates_many(unitary[None, :, :], atol=atol)[0]
    return (float(coordinate[0]), float(coordinate[1]), float(coordinate[2]))


def weyl_coordinates_many(
    unitaries: np.ndarray | Iterable[np.ndarray],
    atol: float = 1e-6,
    *,
    exact_scalar_rounding: bool = True,
) -> np.ndarray:
    """Canonical Weyl coordinates of a batch of two-qubit unitaries.

    Parameters
    ----------
    unitaries : array_like, shape (m, 4, 4)
        Two-qubit unitary matrices, any global phase (an iterable of
        4x4 matrices, or a single 4x4 matrix treated as a batch of one).
    atol : float
        Tolerance used when matching Makhlin invariants.
    exact_scalar_rounding : bool
        ``True`` (default) computes the final Makhlin-invariant divisions
        with numpy complex *scalars*, row by row, keeping the batch
        bit-identical to :func:`weyl_coordinates`; ``False`` runs the
        whole extraction — divisions included — as one stacked numpy
        batch, whose complex array-division ufunc may round the
        invariant *targets* one ulp differently.  The targets only steer
        candidate matching (tolerance ``atol``, ten orders of magnitude
        above one ulp), so the returned coordinates agree to within one
        ulp — and in practice exactly — with the default path.

    Returns
    -------
    numpy.ndarray, shape (m, 3)
        Canonical ``(a, b, c)`` triples inside the Weyl chamber, row per
        input unitary.

    Raises
    ------
    WeylError
        On malformed shapes or non-unitary inputs (``|det| != 1``).

    Notes
    -----
    Both the per-unitary linear algebra (stacked determinants,
    magic-basis conjugations, eigenvalues) and the dominant cost —
    scoring the 96 candidate pairings of each unitary — run as numpy
    batches across the whole input; with ``exact_scalar_rounding=True``
    only the final Makhlin-invariant divisions loop per row, because
    numpy's complex array-division ufunc rounds one ulp differently
    than scalar complex division and the default batch must stay
    **bit-identical** to :func:`weyl_coordinates`
    (itself a batch of one).  The result is deterministic and
    independent of batch composition: splitting, concatenating or
    reordering batches never changes any row's coordinates.  Extraction
    is pure computation — coordinate *memoisation* lives one level up in
    :class:`repro.polytopes.cache.CoordinateCache`, which dedups batch
    misses before calling this function.
    """
    stack = np.asarray(
        unitaries if isinstance(unitaries, np.ndarray) else list(unitaries),
        dtype=complex,
    )
    if stack.ndim == 2:
        stack = stack[None, :, :]
    if stack.ndim != 3 or stack.shape[1:] != (4, 4):
        raise WeylError(f"expected (m, 4, 4) matrices, got shape {stack.shape}")
    if len(stack) == 0:
        return np.zeros((0, 3))

    determinants = np.linalg.det(stack)
    if np.any(np.abs(np.abs(determinants) - 1.0) > 1e-6):
        raise WeylError("matrix is not unitary (|det| != 1)")
    su = stack / determinants[:, None, None] ** 0.25
    um = MAGIC_DAG @ su @ MAGIC
    gamma = np.transpose(um, (0, 2, 1)) @ um
    eigenvalues = np.linalg.eigvals(gamma)
    # Normalise away numerical drift off the unit circle.
    eigenvalues = eigenvalues / np.abs(eigenvalues)
    thetas = np.angle(eigenvalues) / 2.0

    # Makhlin invariants of the raw (un-normalised) unitaries.  By default
    # the final divisions run per row with numpy complex scalars because
    # the complex array-division ufunc rounds differently (by one ulp)
    # than the scalar path used by makhlin_invariants, and the default
    # batch must stay bit-identical to the scalar API; callers that can
    # tolerate the one-ulp target drift stack the divisions too.
    um_raw = MAGIC_DAG @ stack @ MAGIC
    gamma_raw = np.transpose(um_raw, (0, 2, 1)) @ um_raw
    traces = np.trace(gamma_raw, axis1=1, axis2=2)
    traces_sq = np.trace(gamma_raw @ gamma_raw, axis1=1, axis2=2)
    if exact_scalar_rounding:
        targets = np.empty((len(stack), 3))
        for index in range(len(stack)):
            g12 = traces[index] ** 2 / (16 * determinants[index])
            g3 = (
                traces[index] ** 2 - traces_sq[index]
            ) / (4 * determinants[index])
            targets[index] = (g12.real, g12.imag, g3.real)
    else:
        g12 = traces**2 / (16 * determinants)
        g3 = (traces**2 - traces_sq) / (4 * determinants)
        targets = np.stack([g12.real, g12.imag, g3.real], axis=-1)

    return _coordinates_from_thetas(thetas, targets, atol)


def coordinate_distance(
    left: Iterable[float], right: Iterable[float]
) -> float:
    """Euclidean distance between two canonical coordinates."""
    return float(
        np.linalg.norm(np.subtract(tuple(left), tuple(right)))
    )


def canonical_trace_fidelity(
    left: Iterable[float], right: Iterable[float]
) -> float:
    """Average-gate-fidelity proxy between two canonical classes.

    The trace overlap between ``CAN(x)`` and ``CAN(y)`` evaluated at the
    coordinate difference ``d = x - y``::

        Tr(CAN(y)^dag CAN(x)) = 4 * cos(da) cos(db) cos(dc)
                                 - 4 i sin(da) sin(db) sin(dc)

    which we convert to an average gate fidelity ``(|Tr|^2/16 * 4 + 1)/5``.
    This is the decomposition-fidelity estimate used by the approximate
    decomposition search; it is exact when the optimal local corrections are
    the identity and a tight, cheap proxy otherwise.
    """
    da, db, dc = np.subtract(tuple(left), tuple(right))
    real = math.cos(da) * math.cos(db) * math.cos(dc)
    imag = math.sin(da) * math.sin(db) * math.sin(dc)
    trace_sq = 16.0 * (real * real + imag * imag)
    entanglement_fidelity = trace_sq / 16.0
    return float((4.0 * entanglement_fidelity + 1.0) / 5.0)
