"""The quantum-circuit IR used throughout the reproduction.

:class:`QuantumCircuit` is intentionally close in spirit to the subset of
Qiskit's circuit API that the paper's transpilation flow touches: an ordered
list of gate applications on integer qubit indices, builder methods for the
standard gate set, depth / gate counting, unitary and statevector simulation
for (small) equivalence checks, composition, and conversion to a DAG.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import CircuitError
from repro.circuits.gates import DIRECTIVES, Gate, UnitaryGate, standard_gate
from repro.linalg.unitary import apply_unitary_to_state, embed_unitary


@dataclasses.dataclass(frozen=True)
class CircuitInstruction:
    """A gate applied to a tuple of qubits."""

    gate: Gate
    qubits: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubits in {self.qubits!r}")
        if not self.gate.is_directive and len(self.qubits) != self.gate.num_qubits:
            raise CircuitError(
                f"gate {self.gate.name!r} expects {self.gate.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )

    @property
    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2 and not self.gate.is_directive

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.gate!r} @ {self.qubits}"


class QuantumCircuit:
    """An ordered sequence of gates on ``num_qubits`` qubits.

    Args:
        num_qubits: register width.
        name: optional circuit name (used in reports and QASM headers).
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: list[CircuitInstruction] = []

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[CircuitInstruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> CircuitInstruction:
        return self._instructions[index]

    @property
    def instructions(self) -> tuple[CircuitInstruction, ...]:
        return tuple(self._instructions)

    # -- generic append ------------------------------------------------------

    def _check_qubits(self, qubits: Sequence[int]) -> tuple[int, ...]:
        qubits = tuple(int(q) for q in qubits)
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise CircuitError(
                    f"qubit {qubit} out of range for {self.num_qubits}-qubit circuit"
                )
        return qubits

    def append(self, gate: Gate, qubits: Sequence[int]) -> "QuantumCircuit":
        """Append ``gate`` on ``qubits`` and return ``self`` (chainable)."""
        instruction = CircuitInstruction(gate, self._check_qubits(qubits))
        self._instructions.append(instruction)
        return self

    def append_instruction(self, instruction: CircuitInstruction) -> "QuantumCircuit":
        self._check_qubits(instruction.qubits)
        self._instructions.append(instruction)
        return self

    def add(self, name: str, qubits: Sequence[int], *params: float) -> "QuantumCircuit":
        """Append a standard gate by name."""
        return self.append(standard_gate(name, *params), qubits)

    # -- single-qubit builders ----------------------------------------------

    def id(self, qubit: int) -> "QuantumCircuit":
        return self.add("id", [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.add("x", [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.add("y", [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.add("z", [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.add("h", [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.add("s", [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.add("sdg", [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.add("t", [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.add("tdg", [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.add("sx", [qubit])

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.add("rx", [qubit], theta)

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.add("ry", [qubit], theta)

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.add("rz", [qubit], theta)

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        return self.add("p", [qubit], lam)

    def u(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.add("u", [qubit], theta, phi, lam)

    # -- two-qubit builders ---------------------------------------------------

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cx", [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cz", [control, target])

    def cp(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("cp", [control, target], theta)

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("crx", [control, target], theta)

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("cry", [control, target], theta)

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("crz", [control, target], theta)

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.add("swap", [qubit_a, qubit_b])

    def iswap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.add("iswap", [qubit_a, qubit_b])

    def siswap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.add("siswap", [qubit_a, qubit_b])

    def rxx(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.add("rxx", [qubit_a, qubit_b], theta)

    def ryy(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.add("ryy", [qubit_a, qubit_b], theta)

    def rzz(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.add("rzz", [qubit_a, qubit_b], theta)

    def unitary(
        self,
        matrix: np.ndarray,
        qubits: Sequence[int],
        label: str = "unitary",
        check: bool = True,
    ) -> "QuantumCircuit":
        """Append an explicit unitary block."""
        return self.append(UnitaryGate(matrix, label=label, check=check), qubits)

    # -- three-qubit builders -------------------------------------------------

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        return self.add("ccx", [control_a, control_b, target])

    def ccz(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        return self.add("ccz", [control_a, control_b, target])

    def cswap(self, control: int, target_a: int, target_b: int) -> "QuantumCircuit":
        return self.add("cswap", [control, target_a, target_b])

    # -- directives ------------------------------------------------------------

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        targets = qubits if qubits else tuple(range(self.num_qubits))
        instruction = CircuitInstruction(
            Gate("barrier", len(targets)), self._check_qubits(targets)
        )
        self._instructions.append(instruction)
        return self

    def measure_all(self) -> "QuantumCircuit":
        for qubit in range(self.num_qubits):
            instruction = CircuitInstruction(Gate("measure", 1), (qubit,))
            self._instructions.append(instruction)
        return self

    # -- inspection -------------------------------------------------------------

    def count_ops(self) -> Counter:
        """Gate-name histogram (directives included)."""
        return Counter(instr.gate.name for instr in self._instructions)

    def num_two_qubit_gates(self) -> int:
        return sum(1 for instr in self._instructions if instr.is_two_qubit)

    def two_qubit_instructions(self) -> list[CircuitInstruction]:
        return [instr for instr in self._instructions if instr.is_two_qubit]

    def depth(self, *, two_qubit_only: bool = False) -> int:
        """Standard circuit depth (longest chain of gates over shared qubits)."""
        frontier = [0] * self.num_qubits
        for instr in self._instructions:
            if instr.gate.name in DIRECTIVES:
                continue
            if two_qubit_only and not instr.is_two_qubit:
                continue
            level = max(frontier[q] for q in instr.qubits) + 1
            for qubit in instr.qubits:
                frontier[qubit] = level
        return max(frontier) if frontier else 0

    def active_qubits(self) -> set[int]:
        return {q for instr in self._instructions for q in instr.qubits}

    # -- transformations ----------------------------------------------------------

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, name or self.name)
        out._instructions = list(self._instructions)
        return out

    def inverse(self) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, f"{self.name}_dg")
        for instr in reversed(self._instructions):
            if instr.gate.is_directive:
                continue
            out.append(instr.gate.inverse(), instr.qubits)
        return out

    def compose(
        self, other: "QuantumCircuit", qubits: Sequence[int] | None = None
    ) -> "QuantumCircuit":
        """Append ``other`` (optionally remapped onto ``qubits``) onto a copy."""
        mapping = list(range(other.num_qubits)) if qubits is None else list(qubits)
        if len(mapping) < other.num_qubits:
            raise CircuitError("compose mapping is narrower than the other circuit")
        out = self.copy()
        for instr in other:
            out.append(instr.gate, [mapping[q] for q in instr.qubits])
        return out

    def remap(self, mapping: Sequence[int], num_qubits: int | None = None) -> "QuantumCircuit":
        """Relabel qubit ``q`` of this circuit as ``mapping[q]``."""
        width = num_qubits if num_qubits is not None else self.num_qubits
        out = QuantumCircuit(width, self.name)
        for instr in self:
            out.append(instr.gate, [mapping[q] for q in instr.qubits])
        return out

    def without_directives(self) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, self.name)
        for instr in self:
            if instr.gate.is_directive:
                continue
            out.append(instr.gate, instr.qubits)
        return out

    # -- simulation ----------------------------------------------------------------

    def statevector(self, initial: np.ndarray | None = None) -> np.ndarray:
        """Simulate the circuit on a statevector (measurements are ignored)."""
        dim = 2**self.num_qubits
        state = np.zeros(dim, dtype=complex)
        state[0] = 1.0
        if initial is not None:
            state = np.asarray(initial, dtype=complex)
            if state.shape != (dim,):
                raise CircuitError("initial state has the wrong dimension")
        for instr in self._instructions:
            if instr.gate.is_directive:
                continue
            state = apply_unitary_to_state(
                state, instr.gate.matrix(), instr.qubits, self.num_qubits
            )
        return state

    def to_matrix(self) -> np.ndarray:
        """Full unitary of the circuit (practical up to ~10 qubits)."""
        if self.num_qubits > 12:
            raise CircuitError("unitary simulation limited to 12 qubits")
        dim = 2**self.num_qubits
        out = np.eye(dim, dtype=complex)
        for instr in self._instructions:
            if instr.gate.is_directive:
                continue
            embedded = embed_unitary(
                instr.gate.matrix(), instr.qubits, self.num_qubits
            )
            out = embedded @ out
        return out

    # -- interop ---------------------------------------------------------------------

    def to_dag(self):
        """Convert to a :class:`repro.circuits.dag.DAGCircuit`."""
        from repro.circuits.dag import DAGCircuit

        return DAGCircuit.from_circuit(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self)})"
        )


def random_two_qubit_block_circuit(
    num_qubits: int,
    num_blocks: int,
    seed: int | np.random.Generator | None = None,
) -> QuantumCircuit:
    """Random circuit of Haar-random two-qubit blocks on random pairs.

    Useful for stress-testing the transpiler with generic (non-Clifford)
    workloads, similar in spirit to quantum-volume circuits.
    """
    from repro.linalg.random import _as_rng, haar_unitary

    rng = _as_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}q")
    for _ in range(num_blocks):
        a, b = rng.choice(num_qubits, size=2, replace=False)
        circuit.unitary(haar_unitary(4, rng), [int(a), int(b)], check=False)
    return circuit
