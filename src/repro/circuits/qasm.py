"""Minimal OpenQASM 2.0 export.

Only the gates that appear in the final transpiled circuits (and the
benchmark generators) are supported.  The exporter exists so that circuits
produced by this library can be inspected with external tooling; it is not a
round-trip serialisation format.
"""

from __future__ import annotations

from repro.exceptions import QASMError
from repro.circuits.circuit import QuantumCircuit

_SIMPLE = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
    "cx", "cz", "swap", "iswap", "ccx", "cswap",
}
_PARAMETRIC = {"rx", "ry", "rz", "p", "u", "u3", "cp", "crx", "cry", "crz",
               "rxx", "ryy", "rzz"}


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to an OpenQASM 2.0 string.

    Raises:
        QASMError: if the circuit contains a gate with no QASM equivalent
            (e.g. raw unitary blocks — decompose them first).
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
        f"creg c[{circuit.num_qubits}];",
    ]
    for instruction in circuit:
        name = instruction.gate.name
        qubits = ", ".join(f"q[{q}]" for q in instruction.qubits)
        if name == "barrier":
            lines.append(f"barrier {qubits};")
        elif name == "measure":
            (qubit,) = instruction.qubits
            lines.append(f"measure q[{qubit}] -> c[{qubit}];")
        elif name == "siswap":
            # Emit as the XY rotation it is.
            lines.append(f"rxx(-pi/4) {qubits};")
            lines.append(f"ryy(-pi/4) {qubits};")
        elif name in _SIMPLE:
            lines.append(f"{name} {qubits};")
        elif name in _PARAMETRIC:
            params = ", ".join(f"{value!r}" for value in instruction.gate.params)
            emitted = "u3" if name == "u" else name
            lines.append(f"{emitted}({params}) {qubits};")
        else:
            raise QASMError(f"gate {name!r} has no OpenQASM 2 representation")
    return "\n".join(lines) + "\n"
