"""Gate definitions for the circuit IR.

A :class:`Gate` is a named operation with a fixed number of qubits and an
optional parameter list; its matrix (little-endian convention, qubit 0 least
significant) is produced on demand.  Consolidated two-qubit blocks are
represented by :class:`UnitaryGate`, which carries an explicit matrix and an
optional cached Weyl coordinate — the representation the MIRAGE routing pass
works with.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

import numpy as np

from repro.exceptions import CircuitError
from repro.linalg import constants as mat
from repro.linalg.su2 import rx, ry, rz, u3
from repro.linalg.unitary import is_unitary

# ---------------------------------------------------------------------------
# Matrix builders
# ---------------------------------------------------------------------------


def _phase(lam: float) -> np.ndarray:
    return np.diag([1.0, np.exp(1j * lam)]).astype(complex)


def _crx(theta: float) -> np.ndarray:
    out = np.eye(4, dtype=complex)
    block = rx(theta)
    out[1, 1], out[1, 3] = block[0, 0], block[0, 1]
    out[3, 1], out[3, 3] = block[1, 0], block[1, 1]
    return out


def _cry(theta: float) -> np.ndarray:
    out = np.eye(4, dtype=complex)
    block = ry(theta)
    out[1, 1], out[1, 3] = block[0, 0], block[0, 1]
    out[3, 1], out[3, 3] = block[1, 0], block[1, 1]
    return out


def _crz(theta: float) -> np.ndarray:
    out = np.eye(4, dtype=complex)
    block = rz(theta)
    out[1, 1], out[1, 3] = block[0, 0], block[0, 1]
    out[3, 1], out[3, 3] = block[1, 0], block[1, 1]
    return out


def _rxx(theta: float) -> np.ndarray:
    return mat.xx_yy_interaction(-theta / 2.0, 0.0, 0.0)


def _ryy(theta: float) -> np.ndarray:
    return mat.xx_yy_interaction(0.0, -theta / 2.0, 0.0)


def _rzz(theta: float) -> np.ndarray:
    return mat.xx_yy_interaction(0.0, 0.0, -theta / 2.0)


def _xx_plus_yy(theta: float, beta: float = 0.0) -> np.ndarray:
    prephase = np.kron(_phase(beta), np.eye(2))
    core = mat.iswap_power(-theta / np.pi)
    return prephase.conj().T @ core @ prephase


def _ccx() -> np.ndarray:
    out = np.eye(8, dtype=complex)
    # Controls are qubits 0 and 1, target qubit 2 (little endian).
    out[3, 3], out[3, 7] = 0, 1
    out[7, 3], out[7, 7] = 1, 0
    return out


def _cswap() -> np.ndarray:
    out = np.eye(8, dtype=complex)
    # Control qubit 0; swap qubits 1 and 2.
    out[np.ix_([3, 5], [3, 5])] = np.array([[0, 1], [1, 0]])
    return out


def _ccz() -> np.ndarray:
    out = np.eye(8, dtype=complex)
    out[7, 7] = -1
    return out


_FIXED_MATRICES: dict[str, np.ndarray] = {
    "id": mat.ID,
    "x": mat.X,
    "y": mat.Y,
    "z": mat.Z,
    "h": mat.H,
    "s": mat.S,
    "sdg": mat.SDG,
    "t": mat.T,
    "tdg": mat.TDG,
    "sx": mat.SX,
    "cx": mat.CNOT,
    "cz": mat.CZ,
    "swap": mat.SWAP,
    "iswap": mat.ISWAP,
    "siswap": mat.SQRT_ISWAP,
    "ccx": _ccx(),
    "ccz": _ccz(),
    "cswap": _cswap(),
}

_PARAMETRIC_MATRICES: dict[str, Callable[..., np.ndarray]] = {
    "rx": rx,
    "ry": ry,
    "rz": rz,
    "p": _phase,
    "u": u3,
    "u3": u3,
    "cp": mat.cphase,
    "crx": _crx,
    "cry": _cry,
    "crz": _crz,
    "rxx": _rxx,
    "ryy": _ryy,
    "rzz": _rzz,
    "xx_plus_yy": _xx_plus_yy,
    "iswap_power": mat.iswap_power,
    "pswap": mat.pswap,
}

_GATE_QUBITS: dict[str, int] = {
    **{name: 1 for name in ("id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
                            "rx", "ry", "rz", "p", "u", "u3")},
    **{name: 2 for name in ("cx", "cz", "swap", "iswap", "siswap", "cp", "crx",
                            "cry", "crz", "rxx", "ryy", "rzz", "xx_plus_yy",
                            "iswap_power", "pswap")},
    **{name: 3 for name in ("ccx", "ccz", "cswap")},
}

#: Names of directives that are not unitary operations.
DIRECTIVES = {"barrier", "measure"}

#: Self-inverse gates (used by simple circuit simplification).
SELF_INVERSE = {"id", "x", "y", "z", "h", "cx", "cz", "swap", "ccx", "ccz", "cswap"}


@dataclasses.dataclass(frozen=True)
class Gate:
    """An immutable named gate.

    Attributes:
        name: lower-case gate name (e.g. ``"cx"``, ``"rz"``).
        num_qubits: arity.
        params: tuple of float parameters (possibly empty).
    """

    name: str
    num_qubits: int
    params: tuple[float, ...] = ()

    @property
    def is_directive(self) -> bool:
        return self.name in DIRECTIVES

    @property
    def is_two_qubit(self) -> bool:
        return self.num_qubits == 2 and not self.is_directive

    def matrix(self) -> np.ndarray:
        """The unitary matrix of this gate.

        Raises:
            CircuitError: for directives (barrier / measure).
        """
        if self.is_directive:
            raise CircuitError(f"directive {self.name!r} has no matrix")
        if self.name in _FIXED_MATRICES:
            return _FIXED_MATRICES[self.name].copy()
        if self.name in _PARAMETRIC_MATRICES:
            return _PARAMETRIC_MATRICES[self.name](*self.params)
        raise CircuitError(f"unknown gate {self.name!r}")

    def inverse(self) -> "Gate":
        """The inverse gate (kept in the same family when possible)."""
        if self.is_directive:
            raise CircuitError(f"directive {self.name!r} has no inverse")
        if self.name in SELF_INVERSE:
            return self
        inverses = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        if self.name in inverses:
            return Gate(inverses[self.name], self.num_qubits)
        if self.name in {"rx", "ry", "rz", "p", "cp", "crx", "cry", "crz",
                         "rxx", "ryy", "rzz"}:
            return Gate(self.name, self.num_qubits, (-self.params[0],))
        if self.name in {"u", "u3"}:
            theta, phi, lam = self.params
            return Gate(self.name, 1, (-theta, -lam, -phi))
        if self.name == "iswap":
            return Gate("iswap_power", 2, (-1.0,))
        if self.name == "siswap":
            return Gate("iswap_power", 2, (-0.5,))
        if self.name == "iswap_power":
            return Gate("iswap_power", 2, (-self.params[0],))
        raise CircuitError(f"no inverse rule for gate {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            rendered = ", ".join(f"{p:.4g}" for p in self.params)
            return f"{self.name}({rendered})"
        return self.name


class UnitaryGate(Gate):
    """A gate defined by an explicit unitary matrix.

    Used for consolidated two-qubit blocks.  The constructor skips the
    unitarity check when ``check=False`` (the MIRAGE hot path, mirroring the
    paper's removal of ``is_unitary`` in Section VI-C); a cached Weyl
    coordinate may be attached by the consolidation pass.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        *,
        label: str = "unitary",
        check: bool = True,
        coordinate: tuple[float, float, float] | None = None,
    ) -> None:
        matrix = np.asarray(matrix, dtype=complex)
        dim = matrix.shape[0]
        if matrix.shape != (dim, dim) or dim & (dim - 1):
            raise CircuitError("unitary matrix must be square with power-of-two size")
        if check and not is_unitary(matrix):
            raise CircuitError("matrix is not unitary")
        num_qubits = int(math.log2(dim))
        object.__setattr__(self, "name", label)
        object.__setattr__(self, "num_qubits", num_qubits)
        object.__setattr__(self, "params", ())
        object.__setattr__(self, "_matrix", matrix)
        object.__setattr__(self, "coordinate", coordinate)

    def matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def inverse(self) -> "UnitaryGate":
        return UnitaryGate(
            self._matrix.conj().T, label=self.name, check=False
        )

    def with_coordinate(
        self, coordinate: tuple[float, float, float]
    ) -> "UnitaryGate":
        """Copy of the gate with a cached Weyl coordinate annotation."""
        return UnitaryGate(
            self._matrix, label=self.name, check=False, coordinate=coordinate
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnitaryGate({self.name}, {self.num_qubits}q)"


def standard_gate(name: str, *params: float) -> Gate:
    """Construct a standard gate by name, validating the arity and parameters."""
    lowered = name.lower()
    if lowered in DIRECTIVES:
        raise CircuitError("use QuantumCircuit.barrier()/measure() for directives")
    if lowered not in _GATE_QUBITS:
        raise CircuitError(f"unknown gate {name!r}")
    expected_params = {
        "rx": 1, "ry": 1, "rz": 1, "p": 1, "cp": 1, "crx": 1, "cry": 1,
        "crz": 1, "rxx": 1, "ryy": 1, "rzz": 1, "iswap_power": 1, "pswap": 1,
        "u": 3, "u3": 3, "xx_plus_yy": (1, 2),
    }
    if lowered in expected_params:
        allowed = expected_params[lowered]
        allowed = (allowed,) if isinstance(allowed, int) else allowed
        if len(params) not in allowed:
            raise CircuitError(
                f"gate {name!r} expects {allowed} parameter(s), got {len(params)}"
            )
    elif params:
        raise CircuitError(f"gate {name!r} takes no parameters")
    return Gate(lowered, _GATE_QUBITS[lowered], tuple(float(p) for p in params))


def gate_names() -> list[str]:
    """All supported standard-gate names."""
    return sorted(_GATE_QUBITS)
