"""Circuit IR: gates, circuits, DAGs and benchmark generators."""

from repro.circuits.circuit import (
    CircuitInstruction,
    QuantumCircuit,
    random_two_qubit_block_circuit,
)
from repro.circuits.dag import DAGCircuit, DAGNode
from repro.circuits.gates import (
    DIRECTIVES,
    Gate,
    UnitaryGate,
    gate_names,
    standard_gate,
)
from repro.circuits.qasm import to_qasm

__all__ = [
    "CircuitInstruction",
    "QuantumCircuit",
    "random_two_qubit_block_circuit",
    "DAGCircuit",
    "DAGNode",
    "DIRECTIVES",
    "Gate",
    "UnitaryGate",
    "gate_names",
    "standard_gate",
    "to_qasm",
]
