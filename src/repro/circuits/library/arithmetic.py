"""Arithmetic benchmarks: ripple-carry adders and a shift-and-add multiplier."""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def cuccaro_adder(num_bits: int) -> QuantumCircuit:
    """Cuccaro ripple-carry adder on two ``num_bits`` registers.

    Register layout: ``a`` bits at even indices, ``b`` bits at odd indices,
    one carry ancilla at the end (``2 * num_bits + 1`` qubits total) —
    compact enough to mirror the QASMBench adders' interaction structure.
    """
    num_qubits = 2 * num_bits + 1
    circuit = QuantumCircuit(num_qubits, name=f"adder_n{num_qubits}")
    a = [2 * i for i in range(num_bits)]
    b = [2 * i + 1 for i in range(num_bits)]
    carry = num_qubits - 1

    # Prepare a nontrivial input so the circuit is not all-identity.
    for qubit in a[::2]:
        circuit.x(qubit)
    for qubit in b[1::2]:
        circuit.x(qubit)

    # MAJ cascade.
    previous = carry
    for bit in range(num_bits):
        circuit.cx(a[bit], b[bit])
        circuit.cx(a[bit], previous)
        circuit.ccx(previous, b[bit], a[bit])
        previous = a[bit]
    # UMA cascade (reverse).
    for bit in reversed(range(num_bits)):
        previous = carry if bit == 0 else a[bit - 1]
        circuit.ccx(previous, b[bit], a[bit])
        circuit.cx(a[bit], previous)
        circuit.cx(previous, b[bit])
    return circuit


def bigadder(num_qubits: int = 18) -> QuantumCircuit:
    """QASMBench ``bigadder``-style ripple-carry adder sized to ``num_qubits``."""
    num_bits = max(1, (num_qubits - 1) // 2)
    circuit = cuccaro_adder(num_bits)
    circuit.name = f"bigadder_n{circuit.num_qubits}"
    return circuit


def multiplier(num_qubits: int = 15) -> QuantumCircuit:
    """Shift-and-add multiplier (QASMBench ``multiplier``-style).

    Registers: ``x`` (n bits), ``y`` (n bits), product accumulator (n bits)
    with controlled additions of ``y`` into the accumulator for every bit of
    ``x``; Toffoli-heavy, matching the arithmetic class of the suite.
    """
    bits = max(1, num_qubits // 3)
    total = 3 * bits
    circuit = QuantumCircuit(total, name=f"multiplier_n{total}")
    x = list(range(bits))
    y = list(range(bits, 2 * bits))
    accumulator = list(range(2 * bits, 3 * bits))

    for qubit in x[::2]:
        circuit.x(qubit)
    for qubit in y[1::2]:
        circuit.x(qubit)

    for i, control in enumerate(x):
        # Controlled (by x_i) addition of y shifted by i into the accumulator.
        for j, source in enumerate(y):
            target_index = i + j
            if target_index >= bits:
                continue
            target = accumulator[target_index]
            circuit.ccx(control, source, target)
            # Carry propagation approximation: couple to the next accumulator bit.
            if target_index + 1 < bits:
                circuit.ccx(source, target, accumulator[target_index + 1])
    return circuit
