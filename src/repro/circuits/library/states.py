"""Entangled-state preparation benchmarks: GHZ and W states."""

from __future__ import annotations

import math

from repro.circuits.circuit import QuantumCircuit


def ghz(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation (linear CNOT chain)."""
    circuit = QuantumCircuit(num_qubits, name=f"ghz_n{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def wstate(num_qubits: int) -> QuantumCircuit:
    """W-state preparation (QASMBench ``wstate``).

    Uses the standard cascade of controlled rotations from a seed qubit
    followed by the un-computation CNOT fan-in; the hub structure gives the
    circuit a star-like interaction graph that cannot be embedded without
    SWAPs on sparse hardware.
    """
    if num_qubits < 2:
        raise ValueError("a W state needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"wstate_n{num_qubits}")
    circuit.x(num_qubits - 1)
    for index in range(num_qubits - 1):
        remaining = num_qubits - index
        theta = 2 * math.asin(math.sqrt(1.0 / remaining))
        # Controlled rotation distributing amplitude from the hub qubit.
        circuit.cry(theta, num_qubits - 1, index)
        circuit.cx(index, num_qubits - 1)
    return circuit
