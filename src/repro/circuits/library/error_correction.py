"""Error-correction benchmarks: Shor-code stabilisers and a secret-sharing circuit."""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def qec9xz(num_qubits: int = 17) -> QuantumCircuit:
    """Nine-qubit Shor-code style X/Z stabiliser measurement (QASMBench ``qec9xz``).

    Nine data qubits plus eight syndrome ancillas; each ancilla couples to a
    pair of data qubits (Z checks via CNOT into the ancilla, X checks via
    Hadamard-conjugated CNOTs).
    """
    data = list(range(9))
    ancillas = list(range(9, min(num_qubits, 17)))
    circuit = QuantumCircuit(max(num_qubits, 10), name=f"qec9xz_n{circuit_width(num_qubits)}")

    # Encode |0>_L: three GHZ blocks of three qubits with Hadamards.
    for block in range(3):
        base = 3 * block
        circuit.h(base)
        circuit.cx(base, base + 1)
        circuit.cx(base, base + 2)

    # Z-type checks: ancilla a_i measures Z_i Z_{i+1} within each block.
    for index, ancilla in enumerate(ancillas[:6]):
        block = index // 2
        offset = index % 2
        first = 3 * block + offset
        circuit.cx(data[first], ancilla)
        circuit.cx(data[first + 1], ancilla)

    # X-type checks: remaining ancillas compare blocks.
    for index, ancilla in enumerate(ancillas[6:]):
        left_block = index
        right_block = index + 1
        circuit.h(ancilla)
        for qubit in range(3):
            circuit.cx(ancilla, data[3 * left_block + qubit])
            circuit.cx(ancilla, data[3 * right_block + qubit])
        circuit.h(ancilla)
    return circuit


def circuit_width(num_qubits: int) -> int:
    return max(num_qubits, 10)


def seca(num_qubits: int = 11) -> QuantumCircuit:
    """Shor error-correction assisted entanglement circuit (QASMBench ``seca``).

    Encodes a GHZ-shared secret across three parties with Toffoli-based
    majority voting — Toffoli-heavy with medium connectivity demands.
    """
    circuit = QuantumCircuit(num_qubits, name=f"seca_n{num_qubits}")
    # Share a GHZ state among the first three qubits.
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(0, 2)
    # Encode each share into a three-qubit repetition block.
    blocks = [(0, 3, 4), (1, 5, 6), (2, 7, 8)]
    for logical, first, second in blocks:
        circuit.cx(logical, first)
        circuit.cx(logical, second)
    # Simulated error + majority-vote correction on each block.
    for logical, first, second in blocks:
        circuit.x(first)
        circuit.cx(logical, first)
        circuit.cx(logical, second)
        circuit.ccx(first, second, logical)
    # Decode onto the remaining ancillas if available.
    for extra in range(9, num_qubits):
        circuit.cx(extra % 3, extra)
    return circuit
