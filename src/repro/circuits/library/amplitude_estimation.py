"""Amplitude-estimation benchmark (MQTBench ``ae``)."""

from __future__ import annotations

import math

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library.hidden_subgroup import qft


def amplitude_estimation(num_qubits: int = 16, probability: float = 0.2) -> QuantumCircuit:
    """Canonical (QPE-based) amplitude estimation.

    One state qubit carries the Bernoulli amplitude ``sqrt(probability)``;
    the remaining qubits form the evaluation register running phase
    estimation of the Grover operator, which reduces to controlled-Y
    rotations by doubled angles plus an inverse QFT.
    """
    if num_qubits < 3:
        raise ValueError("amplitude estimation needs at least three qubits")
    evaluation = num_qubits - 1
    state = num_qubits - 1  # last qubit is the state register
    theta = 2 * math.asin(math.sqrt(probability))

    circuit = QuantumCircuit(num_qubits, name=f"ae_n{num_qubits}")
    circuit.ry(theta, state)
    for qubit in range(evaluation):
        circuit.h(qubit)
    for qubit in range(evaluation):
        # Controlled Grover power: rotation angle doubles per counting qubit.
        circuit.cry(theta * (2 ** (qubit + 1)), qubit, state)
        circuit.cp(math.pi / (2 ** (evaluation - qubit)), qubit, state)
    inverse_qft = qft(evaluation, do_swaps=True).inverse()
    circuit = circuit.compose(inverse_qft, qubits=list(range(evaluation)))
    return circuit.copy(name=f"ae_n{num_qubits}")
