"""QML-class benchmarks: swap test, kNN kernel, SAT oracle and portfolio QAOA."""

from __future__ import annotations


import numpy as np

from repro.circuits.circuit import QuantumCircuit


def swap_test(num_qubits: int = 25) -> QuantumCircuit:
    """Swap test between two registers (QASMBench ``swap_test``).

    One ancilla controls Fredkin gates between corresponding qubits of two
    ``(num_qubits - 1) / 2`` registers.
    """
    if num_qubits < 3:
        raise ValueError("swap test needs at least three qubits")
    register = (num_qubits - 1) // 2
    total = 2 * register + 1
    circuit = QuantumCircuit(total, name=f"swap_test_n{total}")
    ancilla = 0
    first = list(range(1, register + 1))
    second = list(range(register + 1, 2 * register + 1))

    for index, qubit in enumerate(first):
        circuit.ry(0.3 + 0.1 * index, qubit)
    for index, qubit in enumerate(second):
        circuit.ry(0.5 + 0.05 * index, qubit)

    circuit.h(ancilla)
    for qubit_a, qubit_b in zip(first, second):
        circuit.cswap(ancilla, qubit_a, qubit_b)
    circuit.h(ancilla)
    return circuit


def knn(num_qubits: int = 25) -> QuantumCircuit:
    """Quantum kNN kernel estimation (QASMBench ``knn``-style).

    Structurally a swap test preceded by feature-encoding rotations and
    entangling CNOT ladders in each register.
    """
    if num_qubits < 5:
        raise ValueError("knn needs at least five qubits")
    register = (num_qubits - 1) // 2
    total = 2 * register + 1
    circuit = QuantumCircuit(total, name=f"knn_n{total}")
    ancilla = 0
    first = list(range(1, register + 1))
    second = list(range(register + 1, 2 * register + 1))

    for index, qubit in enumerate(first):
        circuit.ry(0.2 + 0.07 * index, qubit)
        circuit.rz(0.4 + 0.05 * index, qubit)
    for index, qubit in enumerate(second):
        circuit.ry(0.25 + 0.06 * index, qubit)
        circuit.rz(0.35 + 0.04 * index, qubit)
    for qubits in (first, second):
        for left, right in zip(qubits, qubits[1:]):
            circuit.cx(left, right)

    circuit.h(ancilla)
    for qubit_a, qubit_b in zip(first, second):
        circuit.cswap(ancilla, qubit_a, qubit_b)
    circuit.h(ancilla)
    return circuit


def sat(num_qubits: int = 11, num_clauses: int | None = None) -> QuantumCircuit:
    """Grover-style 3-SAT oracle iteration (QASMBench ``sat``).

    Clause ancillas accumulate Toffoli checks of 3-variable clauses, a
    multi-controlled phase marks satisfying assignments, then the clause
    computation is uncomputed and a diffusion step is applied.
    """
    if num_qubits < 5:
        raise ValueError("sat needs at least five qubits")
    num_variables = max(3, num_qubits // 2)
    num_ancillas = num_qubits - num_variables
    if num_clauses is None:
        num_clauses = 2 * num_ancillas
    variables = list(range(num_variables))
    ancillas = list(range(num_variables, num_qubits))
    circuit = QuantumCircuit(num_qubits, name=f"sat_n{num_qubits}")

    for qubit in variables:
        circuit.h(qubit)

    rng = np.random.default_rng(7)

    def clause_qubits(index: int) -> tuple[int, int, int]:
        picks = rng.choice(num_variables, size=3, replace=False)
        return tuple(int(v) for v in picks)

    clauses = [clause_qubits(i) for i in range(num_clauses)]

    def compute_clauses() -> None:
        for index, (a, b, c) in enumerate(clauses):
            ancilla = ancillas[index % num_ancillas]
            circuit.x(a)
            circuit.ccx(a, b, ancilla)
            circuit.x(a)
            circuit.cx(c, ancilla)

    compute_clauses()
    # Phase oracle on the last ancilla.
    circuit.h(ancillas[-1])
    circuit.ccx(ancillas[0], ancillas[len(ancillas) // 2], ancillas[-1])
    circuit.h(ancillas[-1])
    compute_clauses()  # uncompute (self-inverse sequence of the same gates)

    # Diffusion over the variable register.
    for qubit in variables:
        circuit.h(qubit)
        circuit.x(qubit)
    circuit.h(variables[-1])
    circuit.ccx(variables[0], variables[1], variables[-1])
    circuit.h(variables[-1])
    for qubit in variables:
        circuit.x(qubit)
        circuit.h(qubit)
    return circuit


def portfolio_qaoa(num_qubits: int = 16, layers: int = 2) -> QuantumCircuit:
    """Portfolio-optimisation QAOA with a fully connected cost Hamiltonian.

    The asset-covariance cost couples every pair of qubits (MQTBench
    ``portfolioqaoa``), which makes this the densest circuit of the suite.
    """
    rng = np.random.default_rng(13)
    circuit = QuantumCircuit(num_qubits, name=f"portfolioqaoa_n{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for layer in range(layers):
        gamma = 0.4 + 0.2 * layer
        for a in range(num_qubits):
            for b in range(a + 1, num_qubits):
                weight = float(rng.normal(loc=0.5, scale=0.2))
                circuit.rzz(gamma * weight, a, b)
        beta = 0.7 - 0.2 * layer
        for qubit in range(num_qubits):
            circuit.rx(2 * beta, qubit)
    return circuit
