"""Memory benchmarks: bucket-brigade style QRAM addressing."""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def qram(num_qubits: int = 20) -> QuantumCircuit:
    """Bucket-brigade QRAM query circuit (QASMBench ``qram``-style).

    Address qubits fan out through controlled-SWAP routers into memory
    cells and the retrieved value is copied to a bus qubit.  The circuit is
    Fredkin/Toffoli heavy with a tree-shaped interaction graph.
    """
    if num_qubits < 7:
        raise ValueError("qram needs at least seven qubits")
    circuit = QuantumCircuit(num_qubits, name=f"qram_n{num_qubits}")

    num_address = max(2, (num_qubits - 3) // 4)
    address = list(range(num_address))
    bus = num_address
    routers = list(range(num_address + 1, num_address + 1 + num_address))
    memory = list(range(num_address + 1 + num_address, num_qubits))

    # Superpose the address register.
    for qubit in address:
        circuit.h(qubit)

    # Route the query: each address bit toggles a router which conditionally
    # swaps neighbouring memory cells toward the bus.
    for level, (addr, router) in enumerate(zip(address, routers)):
        circuit.cx(addr, router)
        for index in range(level, len(memory) - 1, max(1, level + 1)):
            circuit.cswap(router, memory[index], memory[index + 1])

    # Mark some memory contents and read out onto the bus.
    for index, cell in enumerate(memory):
        if index % 3 == 0:
            circuit.x(cell)
        circuit.cx(cell, bus)

    # Un-route (reverse the router toggles).
    for addr, router in zip(reversed(address), reversed(routers)):
        circuit.cx(addr, router)
    return circuit
