"""Hardware-efficient variational ansatz circuits (paper Fig. 8)."""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def twolocal_full(
    num_qubits: int,
    reps: int = 1,
    *,
    rotation_angle_seed: float = 0.3,
) -> QuantumCircuit:
    """TwoLocal ansatz with full entanglement (CNOT between every pair).

    This is the circuit of paper Fig. 8a: a rotation layer, a full
    entanglement block per repetition, and a final rotation layer.
    """
    circuit = QuantumCircuit(num_qubits, name=f"twolocal_full_n{num_qubits}")
    for repetition in range(reps):
        for qubit in range(num_qubits):
            circuit.ry(rotation_angle_seed + 0.1 * qubit + 0.2 * repetition, qubit)
        for control in range(num_qubits):
            for target in range(control + 1, num_qubits):
                circuit.cx(control, target)
    for qubit in range(num_qubits):
        circuit.ry(rotation_angle_seed / 2 + 0.05 * qubit, qubit)
    return circuit


def efficient_su2(num_qubits: int, reps: int = 2) -> QuantumCircuit:
    """EfficientSU2-style ansatz with linear entanglement."""
    circuit = QuantumCircuit(num_qubits, name=f"efficient_su2_n{num_qubits}")
    for repetition in range(reps):
        for qubit in range(num_qubits):
            circuit.ry(0.1 + 0.07 * qubit + 0.3 * repetition, qubit)
            circuit.rz(0.2 + 0.05 * qubit + 0.1 * repetition, qubit)
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
    for qubit in range(num_qubits):
        circuit.ry(0.15 + 0.02 * qubit, qubit)
    return circuit
