"""Hidden-subgroup class benchmarks: QFT, entangled QFT, QPE, Bernstein-Vazirani."""

from __future__ import annotations

import math


from repro.circuits.circuit import QuantumCircuit


def qft(num_qubits: int, *, do_swaps: bool = True, approximation_degree: int = 0) -> QuantumCircuit:
    """Quantum Fourier Transform on ``num_qubits`` qubits.

    Args:
        num_qubits: register width.
        do_swaps: append the final bit-reversal SWAP network (as the
            benchmark suites do).
        approximation_degree: drop controlled phases smaller than
            ``pi / 2**(num_qubits - approximation_degree)`` (0 = exact).
    """
    circuit = QuantumCircuit(num_qubits, name=f"qft_n{num_qubits}")
    for target in reversed(range(num_qubits)):
        circuit.h(target)
        for control in reversed(range(target)):
            distance = target - control
            if approximation_degree and distance >= num_qubits - approximation_degree:
                continue
            circuit.cp(math.pi / (2**distance), control, target)
    if do_swaps:
        for low in range(num_qubits // 2):
            circuit.swap(low, num_qubits - 1 - low)
    return circuit


def qft_entangled(num_qubits: int) -> QuantumCircuit:
    """GHZ-state preparation followed by a QFT (MQTBench ``qftentangled``)."""
    circuit = QuantumCircuit(num_qubits, name=f"qftentangled_n{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    fourier = qft(num_qubits)
    return circuit.compose(fourier).copy(name=f"qftentangled_n{num_qubits}")


def qpe_exact(num_qubits: int, phase: float = 0.8125) -> QuantumCircuit:
    """Quantum phase estimation with an exactly representable phase.

    One qubit carries the eigenstate, the remaining ``num_qubits - 1`` form
    the counting register (MQTBench ``qpeexact``).
    """
    if num_qubits < 2:
        raise ValueError("QPE needs at least two qubits")
    counting = num_qubits - 1
    target = num_qubits - 1
    circuit = QuantumCircuit(num_qubits, name=f"qpeexact_n{num_qubits}")
    circuit.x(target)
    for qubit in range(counting):
        circuit.h(qubit)
    for qubit in range(counting):
        angle = 2 * math.pi * phase * (2**qubit)
        circuit.cp(angle, qubit, target)
    inverse_qft = qft(counting, do_swaps=True).inverse()
    circuit = circuit.compose(inverse_qft, qubits=list(range(counting)))
    return circuit.copy(name=f"qpeexact_n{num_qubits}")


def bernstein_vazirani(num_qubits: int, secret: int | None = None) -> QuantumCircuit:
    """Bernstein-Vazirani with a dense secret string (QASMBench ``bv``).

    The last qubit is the oracle ancilla; the secret defaults to the
    alternating bit string so roughly half the qubits couple to the ancilla.
    """
    if num_qubits < 2:
        raise ValueError("Bernstein-Vazirani needs at least two qubits")
    data = num_qubits - 1
    if secret is None:
        secret = int("10" * data, 2) % (2**data)
    circuit = QuantumCircuit(num_qubits, name=f"bv_n{num_qubits}")
    ancilla = num_qubits - 1
    circuit.x(ancilla)
    circuit.h(ancilla)
    for qubit in range(data):
        circuit.h(qubit)
    for qubit in range(data):
        if (secret >> qubit) & 1:
            circuit.cx(qubit, ancilla)
    for qubit in range(data):
        circuit.h(qubit)
    circuit.h(ancilla)
    return circuit
