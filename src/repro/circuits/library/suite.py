"""The Table III benchmark suite: named circuits at the paper's sizes."""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library.amplitude_estimation import amplitude_estimation
from repro.circuits.library.arithmetic import bigadder, multiplier
from repro.circuits.library.error_correction import qec9xz, seca
from repro.circuits.library.hidden_subgroup import (
    bernstein_vazirani,
    qft,
    qft_entangled,
    qpe_exact,
)
from repro.circuits.library.memory import qram
from repro.circuits.library.ml import knn, portfolio_qaoa, sat, swap_test
from repro.circuits.library.states import wstate


@dataclasses.dataclass(frozen=True)
class BenchmarkSpec:
    """One row of paper Table III."""

    name: str
    num_qubits: int
    builder: Callable[[int], QuantumCircuit]
    circuit_class: str

    def build(self) -> QuantumCircuit:
        circuit = self.builder(self.num_qubits)
        circuit.name = f"{self.name}_n{circuit.num_qubits}"
        return circuit


#: Paper Table III (name, qubit count, class).
TABLE_III_SUITE: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("wstate", 27, wstate, "Entanglement"),
    BenchmarkSpec("qftentangled", 16, qft_entangled, "Hidden Subgroup"),
    BenchmarkSpec("qpeexact", 16, qpe_exact, "Hidden Subgroup"),
    BenchmarkSpec("ae", 16, amplitude_estimation, "Hidden Subgroup"),
    BenchmarkSpec("qft", 18, qft, "Hidden Subgroup"),
    BenchmarkSpec("bv", 30, bernstein_vazirani, "Hidden Subgroup"),
    BenchmarkSpec("multiplier", 15, multiplier, "Arithmetic"),
    BenchmarkSpec("bigadder", 18, bigadder, "Arithmetic"),
    BenchmarkSpec("qec9xz", 17, qec9xz, "EC"),
    BenchmarkSpec("seca", 11, seca, "EC"),
    BenchmarkSpec("qram", 20, qram, "Memory"),
    BenchmarkSpec("sat", 11, sat, "QML"),
    BenchmarkSpec("portfolioqaoa", 16, portfolio_qaoa, "QML"),
    BenchmarkSpec("knn", 25, knn, "QML"),
    BenchmarkSpec("swap_test", 25, swap_test, "QML"),
)


def benchmark_circuit(name: str, num_qubits: int | None = None) -> QuantumCircuit:
    """Build a Table III benchmark by name (optionally resized)."""
    for spec in TABLE_III_SUITE:
        if spec.name == name:
            width = num_qubits if num_qubits is not None else spec.num_qubits
            circuit = spec.builder(width)
            circuit.name = f"{name}_n{circuit.num_qubits}"
            return circuit
    raise ValueError(f"unknown benchmark {name!r}")


def benchmark_suite(
    names: tuple[str, ...] | list[str] | None = None,
) -> list[QuantumCircuit]:
    """Build the full Table III suite (or a named subset)."""
    selected = (
        TABLE_III_SUITE
        if names is None
        else tuple(spec for spec in TABLE_III_SUITE if spec.name in set(names))
    )
    return [spec.build() for spec in selected]


def suite_inventory() -> list[dict[str, int | str]]:
    """Table III rows: name, qubits, two-qubit gate count, class.

    Two-qubit gates are counted after unrolling three-qubit gates (Toffoli,
    Fredkin) to one- and two-qubit gates, matching how the benchmark suites
    report their gate counts.
    """
    from repro.transpiler.passes.unroll import unroll_to_two_qubit

    rows = []
    for spec in TABLE_III_SUITE:
        circuit = spec.build()
        unrolled = unroll_to_two_qubit(circuit)
        rows.append(
            {
                "name": circuit.name,
                "qubits": circuit.num_qubits,
                "two_qubit_gates": unrolled.num_two_qubit_gates(),
                "class": spec.circuit_class,
            }
        )
    return rows
