"""Benchmark circuit generators (paper Table III plus helpers).

Each generator reproduces the algorithmic structure (and approximate
two-qubit gate count) of the QASMBench / MQTBench circuit the paper uses;
the exact gate-for-gate content of those suites is not required for the
relative routing comparisons the paper reports.
"""

from repro.circuits.library.amplitude_estimation import amplitude_estimation
from repro.circuits.library.arithmetic import bigadder, cuccaro_adder, multiplier
from repro.circuits.library.error_correction import qec9xz, seca
from repro.circuits.library.hidden_subgroup import bernstein_vazirani, qft, qft_entangled, qpe_exact
from repro.circuits.library.memory import qram
from repro.circuits.library.ml import knn, portfolio_qaoa, sat, swap_test
from repro.circuits.library.qaoa import qaoa_maxcut
from repro.circuits.library.states import ghz, wstate
from repro.circuits.library.twolocal import efficient_su2, twolocal_full
from repro.circuits.library.suite import TABLE_III_SUITE, benchmark_circuit, benchmark_suite

__all__ = [
    "amplitude_estimation",
    "bigadder",
    "cuccaro_adder",
    "multiplier",
    "qec9xz",
    "seca",
    "bernstein_vazirani",
    "qft",
    "qft_entangled",
    "qpe_exact",
    "qram",
    "knn",
    "portfolio_qaoa",
    "sat",
    "swap_test",
    "qaoa_maxcut",
    "ghz",
    "wstate",
    "efficient_su2",
    "twolocal_full",
    "TABLE_III_SUITE",
    "benchmark_circuit",
    "benchmark_suite",
]
