"""QAOA circuits for MaxCut on random regular graphs."""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.circuits.circuit import QuantumCircuit


def qaoa_maxcut(
    num_qubits: int,
    layers: int = 1,
    degree: int = 3,
    seed: int = 5,
) -> QuantumCircuit:
    """QAOA MaxCut ansatz on a random ``degree``-regular graph.

    Args:
        num_qubits: one qubit per graph vertex.
        layers: number of (cost, mixer) rounds.
        degree: graph regularity (3-regular is the common benchmark).
        seed: graph / angle seed.
    """
    if num_qubits * degree % 2:
        degree += 1
    graph = nx.random_regular_graph(degree, num_qubits, seed=seed)
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"qaoa_n{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for layer in range(layers):
        gamma = float(rng.uniform(0.2, 1.2))
        beta = float(rng.uniform(0.2, 1.2))
        for a, b in graph.edges:
            circuit.rzz(2 * gamma, a, b)
        for qubit in range(num_qubits):
            circuit.rx(2 * beta, qubit)
    return circuit
