"""Directed-acyclic-graph view of a circuit.

The SABRE and MIRAGE routing passes consume circuits in DAG form: nodes are
gate applications, and a directed edge connects two nodes that act on a
common qubit in program order.  The class also provides the weighted
longest-path computation that backs the paper's circuit-depth metric
(Section IV-B: "the depth metric is calculated using the longest DAG path
with a custom weight function assigned to decomposition cost").
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Iterator, Sequence

from repro.exceptions import DAGError
from repro.circuits.circuit import CircuitInstruction, QuantumCircuit
from repro.circuits.gates import Gate


@dataclasses.dataclass
class DAGNode:
    """A single gate application inside a :class:`DAGCircuit`."""

    node_id: int
    gate: Gate
    qubits: tuple[int, ...]

    @property
    def is_two_qubit(self) -> bool:
        return len(self.qubits) == 2 and not self.gate.is_directive

    @property
    def is_directive(self) -> bool:
        return self.gate.is_directive

    def __hash__(self) -> int:
        return self.node_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DAGNode({self.node_id}, {self.gate!r}, {self.qubits})"


class DAGCircuit:
    """Gate-dependency DAG of a circuit.

    Nodes are kept in insertion (topological) order; edges are induced by
    qubit sharing.  The class supports the queries routing needs — front
    layer, successor iteration, in-degree bookkeeping — plus conversion back
    to a flat :class:`QuantumCircuit`.
    """

    def __init__(self, num_qubits: int, name: str = "dag") -> None:
        self.num_qubits = num_qubits
        self.name = name
        self.nodes: dict[int, DAGNode] = {}
        self._successors: dict[int, list[int]] = {}
        self._predecessors: dict[int, list[int]] = {}
        self._last_on_wire: dict[int, int] = {}
        self._next_id = 0

    # -- construction -----------------------------------------------------

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "DAGCircuit":
        dag = cls(circuit.num_qubits, circuit.name)
        for instruction in circuit:
            dag.add_node(instruction.gate, instruction.qubits)
        return dag

    def add_node(self, gate: Gate, qubits: Sequence[int]) -> DAGNode:
        """Append a gate at the end of the DAG (after all current wire owners)."""
        qubits = tuple(int(q) for q in qubits)
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise DAGError(f"qubit {qubit} out of range")
        node = DAGNode(self._next_id, gate, qubits)
        self._next_id += 1
        self.nodes[node.node_id] = node
        self._successors[node.node_id] = []
        self._predecessors[node.node_id] = []
        for qubit in qubits:
            previous = self._last_on_wire.get(qubit)
            if previous is not None and node.node_id not in self._successors[previous]:
                self._successors[previous].append(node.node_id)
                self._predecessors[node.node_id].append(previous)
            self._last_on_wire[qubit] = node.node_id
        return node

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def successors(self, node: DAGNode | int) -> list[DAGNode]:
        node_id = node.node_id if isinstance(node, DAGNode) else node
        return [self.nodes[i] for i in self._successors[node_id]]

    def predecessors(self, node: DAGNode | int) -> list[DAGNode]:
        node_id = node.node_id if isinstance(node, DAGNode) else node
        return [self.nodes[i] for i in self._predecessors[node_id]]

    def in_degrees(self) -> dict[int, int]:
        """Map of node id to number of predecessor nodes."""
        return {node_id: len(preds) for node_id, preds in self._predecessors.items()}

    def front_layer(self) -> list[DAGNode]:
        """Nodes with no predecessors (all dependencies resolved)."""
        return [
            self.nodes[node_id]
            for node_id, preds in self._predecessors.items()
            if not preds
        ]

    def topological_nodes(self) -> Iterator[DAGNode]:
        """Iterate nodes in a topological order (Kahn's algorithm)."""
        indegree = self.in_degrees()
        ready = deque(
            node_id for node_id in self.nodes if indegree[node_id] == 0
        )
        emitted = 0
        while ready:
            node_id = ready.popleft()
            emitted += 1
            yield self.nodes[node_id]
            for succ in self._successors[node_id]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if emitted != len(self.nodes):
            raise DAGError("cycle detected in DAG")

    def two_qubit_nodes(self) -> list[DAGNode]:
        return [node for node in self.nodes.values() if node.is_two_qubit]

    def count_ops(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes.values():
            counts[node.gate.name] = counts.get(node.gate.name, 0) + 1
        return counts

    # -- metrics -------------------------------------------------------------

    def longest_path_length(
        self, weight: Callable[[DAGNode], float] | None = None
    ) -> float:
        """Weighted critical-path length.

        Args:
            weight: node-weight function; defaults to 1 per non-directive
                node (plain gate depth).

        Returns:
            The maximum, over all paths, of the summed node weights.
        """
        if weight is None:
            weight = lambda node: 0.0 if node.is_directive else 1.0  # noqa: E731
        distance: dict[int, float] = {}
        best = 0.0
        for node in self.topological_nodes():
            incoming = self._predecessors[node.node_id]
            upstream = max((distance[i] for i in incoming), default=0.0)
            distance[node.node_id] = upstream + weight(node)
            best = max(best, distance[node.node_id])
        return best

    def depth(self) -> int:
        return int(self.longest_path_length())

    # -- conversion -------------------------------------------------------------

    def to_circuit(self) -> QuantumCircuit:
        circuit = QuantumCircuit(self.num_qubits, self.name)
        for node in self.topological_nodes():
            circuit.append_instruction(CircuitInstruction(node.gate, node.qubits))
        return circuit

    def copy(self) -> "DAGCircuit":
        out = DAGCircuit(self.num_qubits, self.name)
        for node in self.topological_nodes():
            out.add_node(node.gate, node.qubits)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DAGCircuit(name={self.name!r}, nodes={len(self.nodes)})"
