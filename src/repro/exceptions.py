"""Exception hierarchy for the MIRAGE reproduction library.

Every error raised on purpose by this package derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CircuitError(ReproError):
    """Raised for malformed circuits, bad qubit indices or invalid gates."""


class DAGError(ReproError):
    """Raised when a DAG operation would violate the DAG invariants."""


class DecompositionError(ReproError):
    """Raised when a unitary cannot be decomposed as requested."""


class TranspilerError(ReproError):
    """Raised by transpiler passes (layout, routing, basis translation)."""


class InvalidModeError(TranspilerError, ValueError):
    """Raised when a string-mode knob does not name a known mode.

    Used by the batch front door for its ``fanout=``/``scheduler=``/
    ``plan=`` knobs: an unknown string must fail fast with the accepted
    values named, never silently fall back to a default.  Deriving from
    both :class:`TranspilerError` and :class:`ValueError` keeps existing
    ``except TranspilerError`` callers working while matching the
    conventional exception type for a bad argument value.
    """


class ServiceError(ReproError):
    """Raised by the transpilation service front-end.

    Covers request-time misuse of :class:`repro.service.MirageService` —
    submitting to a closed service, submitting from outside a running
    event loop, or a window dispatch failing wholesale.
    """


class ServiceOverloadError(ServiceError):
    """Raised when admission control sheds a request instead of queueing it.

    Carries a ``retry_after_ms`` hint — the caller should back off at
    least that long before resubmitting.  Shedding happens when a
    tenant exceeds its quota (``MIRAGE_SERVICE_TENANT_QUOTA``), when
    the service-wide pending queue is full
    (``MIRAGE_SERVICE_MAX_PENDING``), or when a deterministic
    ``shed:request:<ordinal>`` fault-plan entry targets the submission.
    Shedding is *pre-admission*: no window slot, seed or executor work
    is consumed by a shed request.
    """

    def __init__(self, message: str, *, retry_after_ms: float = 0.0):
        super().__init__(message)
        #: Suggested client back-off before resubmitting, in milliseconds.
        self.retry_after_ms = float(retry_after_ms)


class ServiceClosedError(ServiceError):
    """Raised by ``submit()`` once a drain has begun or completed.

    Typed (rather than a bare :class:`ServiceError`) so load balancers
    can distinguish "this instance is going away — resubmit elsewhere
    *now*" from transient overload (:class:`ServiceOverloadError`,
    which carries a retry-after hint for the *same* instance).
    """


class DeadlineExceededError(TranspilerError):
    """Raised when a request's deadline expires before its result is ready.

    Deadlines flow from ``MirageService.submit(..., deadline_ms=)``
    through the batch engine (``transpile_many(circuit_deadlines=...)``)
    down to per-chunk dispatch records, so expiry cancels only the
    expired request's own in-flight trials: sibling requests coalesced
    into the same window complete normally and stay byte-identical to
    their direct ``transpile()`` outputs.  Derives from
    :class:`TranspilerError` because the engine raises it too — but it
    is deliberately *not* a :class:`TransportError`, so the replay
    ladder never retries an expired chunk.
    """


class TransportError(TranspilerError):
    """Raised when a dispatch transport resource is lost or corrupted.

    Distinguishes *recoverable* transport failures — a shared-memory
    payload segment that vanished before a worker could attach it, or a
    payload whose bytes no longer match their content digest — from task
    bugs: the fault-tolerant dispatch layer retries work that failed with
    a :class:`TransportError` (republishing the payload inline if need
    be), while any other exception from a task propagates unchanged.
    """


class RemoteTransportError(TransportError):
    """A remote worker-host connection was lost, timed out or went stale.

    Covers every *recoverable* failure of the socket transport: a
    connection reset mid-chunk, a host whose heartbeats stopped, a read
    or connect deadline that expired.  Deriving from
    :class:`TransportError` routes all of them through the established
    replay ladder — reconnect with backoff, replay only the lost
    chunks, degrade to local execution when the budget is spent.
    """


class GarbledFrameError(RemoteTransportError):
    """A protocol frame failed its CRC (or magic) check.

    Raised by the frame codec on either side of a connection, and by
    the client when a host reports that a frame *it* received was
    corrupt.  The connection's state is unknowable after a garbled
    frame, so recovery always drops the connection and replays the
    in-flight chunk on a fresh one (counted under ``frames_garbled``).
    """


class ProtocolVersionError(TranspilerError):
    """Client and worker-host speak different protocol versions.

    Deliberately *not* a :class:`TransportError`: a version mismatch is
    a deployment bug that no amount of reconnecting fixes, so the
    client marks the host down immediately instead of burning its
    retry budget against it.
    """


class CoverageError(ReproError):
    """Raised when a coverage set cannot answer a membership/cost query."""


class WeylError(ReproError):
    """Raised when Weyl-coordinate computation fails to converge."""


class QASMError(ReproError):
    """Raised for invalid OpenQASM serialisation requests."""
