"""Exception hierarchy for the MIRAGE reproduction library.

Every error raised on purpose by this package derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CircuitError(ReproError):
    """Raised for malformed circuits, bad qubit indices or invalid gates."""


class DAGError(ReproError):
    """Raised when a DAG operation would violate the DAG invariants."""


class DecompositionError(ReproError):
    """Raised when a unitary cannot be decomposed as requested."""


class TranspilerError(ReproError):
    """Raised by transpiler passes (layout, routing, basis translation)."""


class InvalidModeError(TranspilerError, ValueError):
    """Raised when a string-mode knob does not name a known mode.

    Used by the batch front door for its ``fanout=``/``scheduler=``/
    ``plan=`` knobs: an unknown string must fail fast with the accepted
    values named, never silently fall back to a default.  Deriving from
    both :class:`TranspilerError` and :class:`ValueError` keeps existing
    ``except TranspilerError`` callers working while matching the
    conventional exception type for a bad argument value.
    """


class ServiceError(ReproError):
    """Raised by the transpilation service front-end.

    Covers request-time misuse of :class:`repro.service.MirageService` —
    submitting to a closed service, submitting from outside a running
    event loop, or a window dispatch failing wholesale.
    """


class TransportError(TranspilerError):
    """Raised when a dispatch transport resource is lost or corrupted.

    Distinguishes *recoverable* transport failures — a shared-memory
    payload segment that vanished before a worker could attach it, or a
    payload whose bytes no longer match their content digest — from task
    bugs: the fault-tolerant dispatch layer retries work that failed with
    a :class:`TransportError` (republishing the payload inline if need
    be), while any other exception from a task propagates unchanged.
    """


class CoverageError(ReproError):
    """Raised when a coverage set cannot answer a membership/cost query."""


class WeylError(ReproError):
    """Raised when Weyl-coordinate computation fails to converge."""


class QASMError(ReproError):
    """Raised for invalid OpenQASM serialisation requests."""
