"""Exception hierarchy for the MIRAGE reproduction library.

Every error raised on purpose by this package derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CircuitError(ReproError):
    """Raised for malformed circuits, bad qubit indices or invalid gates."""


class DAGError(ReproError):
    """Raised when a DAG operation would violate the DAG invariants."""


class DecompositionError(ReproError):
    """Raised when a unitary cannot be decomposed as requested."""


class TranspilerError(ReproError):
    """Raised by transpiler passes (layout, routing, basis translation)."""


class TransportError(TranspilerError):
    """Raised when a dispatch transport resource is lost or corrupted.

    Distinguishes *recoverable* transport failures — a shared-memory
    payload segment that vanished before a worker could attach it, or a
    payload whose bytes no longer match their content digest — from task
    bugs: the fault-tolerant dispatch layer retries work that failed with
    a :class:`TransportError` (republishing the payload inline if need
    be), while any other exception from a task propagates unchanged.
    """


class CoverageError(ReproError):
    """Raised when a coverage set cannot answer a membership/cost query."""


class WeylError(ReproError):
    """Raised when Weyl-coordinate computation fails to converge."""


class QASMError(ReproError):
    """Raised for invalid OpenQASM serialisation requests."""
