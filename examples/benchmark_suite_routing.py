"""Route a subset of the Table III suite on heavy-hex and square lattices.

A smaller-budget version of the paper's Fig. 12 experiment (use
``--full`` to run every circuit; expect a long runtime in pure Python).
"""

import argparse

from repro.circuits.library import benchmark_suite
from repro.core import compare_methods
from repro.transpiler import heavy_hex_topology, square_lattice_topology

QUICK_SUBSET = ["seca", "bigadder", "qec9xz", "sat"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run all 15 circuits")
    parser.add_argument("--trials", type=int, default=2, help="layout trials per method")
    args = parser.parse_args()

    circuits = benchmark_suite(None if args.full else QUICK_SUBSET)
    topologies = {
        "heavy-hex-57": heavy_hex_topology(57),
        "square-6x6": square_lattice_topology(6),
    }

    for topo_name, topology in topologies.items():
        print(f"\n=== {topo_name} ===")
        print(f"{'circuit':<18} {'sabre depth':>12} {'mirage depth':>13} "
              f"{'depth gain':>11} {'swap gain':>10}")
        for circuit in circuits:
            results = compare_methods(
                circuit, topology, layout_trials=args.trials, seed=11,
                selections=("depth",),
            )
            sabre = results["sabre"].metrics
            mirage = results["mirage-depth"].metrics
            depth_gain = (sabre.depth - mirage.depth) / sabre.depth if sabre.depth else 0
            swap_gain = (
                (sabre.swap_count - mirage.swap_count) / sabre.swap_count
                if sabre.swap_count
                else 0
            )
            print(f"{circuit.name:<18} {sabre.depth:>12.1f} {mirage.depth:>13.1f} "
                  f"{depth_gain:>10.1%} {swap_gain:>9.1%}")


if __name__ == "__main__":
    main()
