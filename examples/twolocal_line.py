"""Paper Fig. 8 scenario: a fully entangling TwoLocal ansatz on a 4-qubit line.

The baseline needs three SWAP gates (16 sqrt(iSWAP) pulses); MIRAGE absorbs
every SWAP into mirror gates and finishes in 10 pulses.
"""

from repro.circuits.library import twolocal_full
from repro.core import transpile
from repro.transpiler import line_topology


def main() -> None:
    circuit = twolocal_full(4)
    line = line_topology(4)

    sabre = transpile(circuit, line, method="sabre", selection="swaps",
                      layout_trials=4, use_vf2=False, seed=3)
    mirage = transpile(circuit, line, method="mirage", selection="depth",
                       layout_trials=4, use_vf2=False, seed=3)

    for name, result in (("Qiskit-style SABRE", sabre), ("MIRAGE", mirage)):
        pulses = result.metrics.depth / 0.5  # sqrt(iSWAP) pulses on the critical path
        print(f"{name:<20} depth={result.metrics.depth:5.2f} pulse-units "
              f"(~{pulses:.0f} sqrt(iSWAP) pulses), swaps={result.swaps_added}, "
              f"mirrors={result.mirrors_accepted}")
    print("\npaper Fig. 8: baseline 16 pulses with 3 SWAPs, MIRAGE 10 pulses with 0 SWAPs")


if __name__ == "__main__":
    main()
