"""Quickstart: transpile a QFT circuit with MIRAGE vs. the SABRE baseline.

Covers the entry points of the staged pipeline:

* :func:`repro.core.compare_methods` — SABRE vs. MIRAGE on one circuit;
* the per-stage timing report every :class:`TranspileResult` carries;
* :func:`repro.core.transpile_many` — batch transpilation sharing one
  coverage set and one (optionally parallel) trial executor;
* the batched coverage queries (``cost_of_many`` / ``mirror_cost_of_many``
  / ``depth_of_many``) behind every cost estimate, and the persistent
  coverage cache that makes warm starts near-instant.

Coverage sets built through :func:`repro.polytopes.get_coverage_set` (what
``transpile`` uses) are persisted under ``$MIRAGE_CACHE_DIR`` (default
``~/.cache/mirage``), so every process after the first skips the dominant
cold-start cost.  Set ``MIRAGE_CACHE_DISABLE=1`` to opt out.

Run with ``python examples/quickstart.py``.
"""

import numpy as np

from repro.circuits.library import ghz, qft, twolocal_full
from repro.core import compare_methods, transpile_many
from repro.polytopes import get_coverage_set
from repro.transpiler import square_lattice_topology
from repro.weyl.haar import cached_haar_samples


def main() -> None:
    circuit = qft(8)
    lattice = square_lattice_topology(3)  # 3x3 square lattice, 9 qubits
    print(f"input: {circuit.name}, {circuit.num_qubits} qubits, "
          f"{circuit.num_two_qubit_gates()} two-qubit gates")

    results = compare_methods(circuit, lattice, layout_trials=3, seed=7)
    print(f"{'method':<14} {'depth':>8} {'2Q cost':>8} {'swaps':>6} {'mirrors':>8}")
    for name, result in results.items():
        metrics = result.metrics
        print(
            f"{name:<14} {metrics.depth:>8.2f} {metrics.total_cost:>8.2f} "
            f"{result.swaps_added:>6} {result.mirrors_accepted:>8}"
        )

    baseline = results["sabre"].metrics.depth
    best = results["mirage-depth"].metrics.depth
    print(f"\nMIRAGE depth reduction vs SABRE: {(baseline - best) / baseline:.1%}")

    # Every result carries the per-stage timing report of the pipeline
    # that produced it (clean/unroll/consolidate/vf2/route/select).
    print("\npipeline stages (mirage-depth):")
    for name, seconds in results["mirage-depth"].stage_seconds().items():
        print(f"  {name:<12} {seconds:8.4f} s")

    # Batch API: one coverage set and one trial executor shared across the
    # whole batch.  executor="processes" fans the routing trials of each
    # circuit out over a process pool; fixed seeds keep the output
    # identical to a serial run.
    batch = transpile_many(
        [qft(6), ghz(7), twolocal_full(6)],
        lattice,
        layout_trials=3,
        seed=7,
        executor="processes",
        max_workers=2,
    )
    print(f"\nbatch of {len(batch)} circuits via {batch.executor!r} "
          f"in {batch.runtime_seconds:.2f} s")
    for row in batch.summaries():
        print(f"  {row['method']:<8} depth={row['depth']:<8} "
              f"swaps={row['swaps']:<3} mirrors={row['mirrors']}")

    # Batched coverage queries: every per-gate hot path is array-shaped.
    # cost_of_many answers a whole coordinate batch with stacked half-space
    # matrix products (element-wise identical to cost_of in a loop).
    coverage = get_coverage_set("sqrt_iswap", mirror=True)
    samples = cached_haar_samples(1000, 2024)
    costs = coverage.cost_of_many(samples)
    mirror_costs = coverage.mirror_cost_of_many(samples)
    print(f"\nbatched coverage queries over {len(samples)} Haar samples:")
    print(f"  mean cost        {costs.mean():.3f}")
    print(f"  mean mirror cost {mirror_costs.mean():.3f}")
    print(f"  mirror cheaper for {np.mean(mirror_costs < costs):.1%} of classes")


if __name__ == "__main__":
    main()
