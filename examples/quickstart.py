"""Quickstart: transpile a QFT circuit with MIRAGE vs. the SABRE baseline.

Run with ``python examples/quickstart.py``.
"""

from repro.circuits.library import qft
from repro.core import compare_methods
from repro.transpiler import square_lattice_topology


def main() -> None:
    circuit = qft(8)
    lattice = square_lattice_topology(3)  # 3x3 square lattice, 9 qubits
    print(f"input: {circuit.name}, {circuit.num_qubits} qubits, "
          f"{circuit.num_two_qubit_gates()} two-qubit gates")

    results = compare_methods(circuit, lattice, layout_trials=3, seed=7)
    print(f"{'method':<14} {'depth':>8} {'2Q cost':>8} {'swaps':>6} {'mirrors':>8}")
    for name, result in results.items():
        metrics = result.metrics
        print(
            f"{name:<14} {metrics.depth:>8.2f} {metrics.total_cost:>8.2f} "
            f"{result.swaps_added:>6} {result.mirrors_accepted:>8}"
        )

    baseline = results["sabre"].metrics.depth
    best = results["mirage-depth"].metrics.depth
    print(f"\nMIRAGE depth reduction vs SABRE: {(baseline - best) / baseline:.1%}")


if __name__ == "__main__":
    main()
