"""Mirror-gate decomposition analysis (paper Section III, Tables I and II).

Computes Haar-weighted coverage volumes and Haar scores for the sqrt(iSWAP)
basis with and without mirror gates, then runs the Algorithm-1 Monte Carlo
with approximate decomposition.
"""

from repro.fidelity import approximate_gate_costs
from repro.polytopes import build_coverage_set, haar_score
from repro.weyl.haar import cached_haar_samples


def main() -> None:
    samples = cached_haar_samples(2000, 2024)
    exact = build_coverage_set("sqrt_iswap", num_samples=800, seed=7)
    mirrored = build_coverage_set("sqrt_iswap", num_samples=800, seed=7, mirror=True)

    print("coverage volume per depth (Haar weighted):")
    for label, coverage in (("exact", exact), ("mirror", mirrored)):
        volumes = coverage.haar_volumes(samples)
        rendered = ", ".join(f"k={k}: {v:.3f}" for k, v in sorted(volumes.items()))
        print(f"  {label:<7} {rendered}")

    print("\nHaar scores (paper Table I row for sqrt(iSWAP): 1.105 / 1.029):")
    for label, coverage in (("exact", exact), ("mirror", mirrored)):
        result = haar_score(coverage, samples=samples)
        print(f"  {label:<7} score={result.score:.4f}  fidelity={result.average_fidelity:.4f}")

    print("\nwith approximate decomposition (paper Table II: 1.031 / 0.995):")
    for label, coverage in (("exact", exact), ("mirror", mirrored)):
        result = approximate_gate_costs(coverage, samples=samples[:400])
        print(f"  {label:<7} score={result.haar_score:.4f}  fidelity={result.average_fidelity:.4f} "
              f"(approximations accepted: {result.approximations_accepted})")


if __name__ == "__main__":
    main()
