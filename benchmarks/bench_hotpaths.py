"""Hot-path micro-benchmarks: batched vs scalar, emitting BENCH_hotpaths.json.

Measures the four paths the vectorized overhaul touched, each against a
faithful reimplementation of the pre-overhaul scalar code, and asserts the
outputs are element-wise / byte-for-byte identical while timing both:

* ``coverage_cost``   — ``CoverageSet.cost_of`` loop vs ``cost_of_many``.
* ``weyl``            — per-candidate Python loop vs ``weyl_coordinates_many``.
* ``swap_choice``     — copy-layout-and-rescore SWAP selection vs the
                        incremental delta scoring, timed inside the router.
* ``coverage_cache``  — cold coverage build vs warm load from the persistent
                        disk cache (isolated in a temporary ``MIRAGE_CACHE_DIR``).

Run ``python benchmarks/bench_hotpaths.py --smoke`` for the CI-sized run or
without flags for the full sizes; the machine-readable result lands in
``BENCH_hotpaths.json`` (override with ``--out``).  The JSON also records
fixed-seed transpile digests so perf trajectories across PRs can confirm
behaviour never drifted.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.circuits.library import benchmark_circuit, twolocal_full
from repro.core.transpile import transpile
from repro.linalg.constants import MAGIC, MAGIC_DAG
from repro.linalg.random import haar_unitary
from repro.polytopes.coverage import build_coverage_set, load_or_build_coverage_set
from repro.transpiler.layout import Layout
from repro.transpiler.passes.sabre_swap import SabreSwap
from repro.transpiler.topologies import topology_by_name
from repro.weyl.canonical import canonicalize_coordinate
from repro.weyl.coordinates import weyl_coordinates_many
from repro.weyl.haar import cached_haar_samples
from repro.weyl.invariants import (
    invariants_close,
    makhlin_from_coordinate,
    makhlin_invariants,
)


def circuit_digest(circuit) -> str:
    """Stable digest of a circuit's gate stream (names, params, qubits)."""
    lines = []
    for instruction in circuit:
        gate = instruction.gate
        params = ",".join(f"{p:.12e}" for p in gate.params)
        lines.append(f"{gate.name}({params})@{instruction.qubits}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


# -- pre-overhaul reference implementations ---------------------------------


def _reference_weyl(unitary: np.ndarray, atol: float = 1e-6):
    """The historical per-candidate Python loop for Weyl extraction."""
    import itertools

    det = np.linalg.det(unitary)
    su = unitary / det**0.25
    um = MAGIC_DAG @ su @ MAGIC
    gamma = um.T @ um
    eigenvalues = np.linalg.eigvals(gamma)
    eigenvalues = eigenvalues / np.abs(eigenvalues)
    thetas = np.angle(eigenvalues) / 2.0
    target = makhlin_invariants(unitary)

    def candidates():
        for selection in itertools.permutations(range(4), 3):
            t1, t2, t3 = (thetas[i] for i in selection)
            yield ((t1 + t2) / 2.0, (t2 + t3) / 2.0, (t1 + t3) / 2.0)
        for selection in itertools.permutations(range(4), 3):
            base = [thetas[i] for i in selection]
            for shift_index in range(3):
                shifted = list(base)
                shifted[shift_index] += math.pi
                t1, t2, t3 = shifted
                yield ((t1 + t2) / 2.0, (t2 + t3) / 2.0, (t1 + t3) / 2.0)

    best = None
    for raw in candidates():
        candidate = canonicalize_coordinate(raw)
        cand_inv = makhlin_from_coordinate(candidate)
        if invariants_close(cand_inv, target, atol=atol):
            return candidate
        error = float(np.linalg.norm(np.subtract(cand_inv, target)))
        if best is None or error < best[0]:
            best = (error, candidate)
    return best[1]


class _FullRescoreSwap(SabreSwap):
    """Router with the historical copy-layout-and-rescore SWAP selection."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.choose_seconds = 0.0

    def _choose_swap(self, front, layout, dag, rng):
        start = time.perf_counter()
        candidates = self._swap_candidates(front, layout)
        if not candidates:
            raise RuntimeError("no SWAP candidates")
        extended = self._extended_set(front, dag)
        best_score = np.inf
        best_edges = []
        for edge in candidates:
            trial = layout.copy()
            trial.swap_physical(*edge)
            score = self.routing_heuristic(front, extended, trial)
            score *= max(self._decay[edge[0]], self._decay[edge[1]])
            if score < best_score - 1e-12:
                best_score = score
                best_edges = [edge]
            elif abs(score - best_score) <= 1e-12:
                best_edges.append(edge)
        choice = best_edges[int(rng.integers(len(best_edges)))]
        self.choose_seconds += time.perf_counter() - start
        return choice


class _TimedDeltaSwap(SabreSwap):
    """Current router instrumented to accumulate SWAP-selection time."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.choose_seconds = 0.0

    def _choose_swap(self, front, layout, dag, rng):
        start = time.perf_counter()
        choice = super()._choose_swap(front, layout, dag, rng)
        self.choose_seconds += time.perf_counter() - start
        return choice


# -- benchmark sections ------------------------------------------------------


def bench_coverage_cost(num_coordinates: int, coverage_samples: int) -> dict:
    coverage = build_coverage_set(
        "sqrt_iswap", num_samples=coverage_samples, seed=7, mirror=True
    )
    samples = cached_haar_samples(num_coordinates, 2024)

    coverage.clear_cache()
    start = time.perf_counter()
    scalar = np.array([coverage.cost_of(row) for row in samples])
    scalar_seconds = time.perf_counter() - start

    coverage.clear_cache()
    start = time.perf_counter()
    batched = coverage.cost_of_many(samples)
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = coverage.cost_of_many(samples)
    warm_seconds = time.perf_counter() - start

    return {
        "num_coordinates": num_coordinates,
        "scalar_s": scalar_seconds,
        "batched_s": batched_seconds,
        "warm_cache_s": warm_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "equal": bool(np.array_equal(scalar, batched) and np.array_equal(warm, batched)),
    }


def bench_weyl(num_unitaries: int) -> dict:
    rng = np.random.default_rng(5)
    unitaries = np.stack([haar_unitary(4, rng) for _ in range(num_unitaries)])

    start = time.perf_counter()
    scalar = np.array([_reference_weyl(u) for u in unitaries])
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = weyl_coordinates_many(unitaries)
    batched_seconds = time.perf_counter() - start

    return {
        "num_unitaries": num_unitaries,
        "scalar_s": scalar_seconds,
        "batched_s": batched_seconds,
        "speedup": scalar_seconds / batched_seconds,
        "equal": bool(np.array_equal(scalar, batched)),
    }


def bench_swap_choice(width: int) -> dict:
    coupling = topology_by_name("square", width)
    circuit = benchmark_circuit("qft", width)
    dag = circuit.to_dag()
    layout = Layout.trivial(width, coupling.num_qubits)

    full = _FullRescoreSwap(coupling, seed=3)
    start = time.perf_counter()
    full_result = full.run(dag, layout.copy(), seed=3)
    full_seconds = time.perf_counter() - start

    delta = _TimedDeltaSwap(coupling, seed=3)
    start = time.perf_counter()
    delta_result = delta.run(dag, layout.copy(), seed=3)
    delta_seconds = time.perf_counter() - start

    return {
        "width": width,
        "swaps": delta_result.swaps_added,
        "full_route_s": full_seconds,
        "delta_route_s": delta_seconds,
        "full_choose_s": full.choose_seconds,
        "delta_choose_s": delta.choose_seconds,
        "choose_speedup": full.choose_seconds / delta.choose_seconds,
        "route_speedup": full_seconds / delta_seconds,
        "equal": bool(
            full_result.swaps_added == delta_result.swaps_added
            and circuit_digest(full_result.dag.to_circuit())
            == circuit_digest(delta_result.dag.to_circuit())
        ),
    }


def bench_coverage_cache(coverage_samples: int) -> dict:
    samples = cached_haar_samples(500, 2024)
    with tempfile.TemporaryDirectory() as tmp:
        previous = os.environ.get("MIRAGE_CACHE_DIR")
        disable = os.environ.pop("MIRAGE_CACHE_DISABLE", None)
        os.environ["MIRAGE_CACHE_DIR"] = tmp
        try:
            start = time.perf_counter()
            cold = load_or_build_coverage_set(
                "sqrt_iswap", num_samples=coverage_samples, seed=7, mirror=True
            )
            cold_seconds = time.perf_counter() - start

            start = time.perf_counter()
            warm = load_or_build_coverage_set(
                "sqrt_iswap", num_samples=coverage_samples, seed=7, mirror=True
            )
            warm_seconds = time.perf_counter() - start
        finally:
            if previous is None:
                os.environ.pop("MIRAGE_CACHE_DIR", None)
            else:
                os.environ["MIRAGE_CACHE_DIR"] = previous
            if disable is not None:
                os.environ["MIRAGE_CACHE_DISABLE"] = disable
    return {
        "coverage_samples": coverage_samples,
        "cold_s": cold_seconds,
        "warm_s": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "equal": bool(
            np.array_equal(cold.cost_of_many(samples), warm.cost_of_many(samples))
        ),
    }


def bench_transpile_digests() -> dict:
    digests = {}
    for method in ("sabre", "mirage"):
        result = transpile(
            twolocal_full(6, reps=1),
            coupling="line",
            basis="sqrt_iswap",
            method=method,
            layout_trials=2,
            refinement_rounds=1,
            seed=11,
        )
        digests[method] = {
            "digest": circuit_digest(result.circuit),
            "swaps": result.swaps_added,
            "mirrors": result.mirrors_accepted,
            "depth": result.metrics.depth,
        }
    return digests


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run (smaller coverage sets, fewer samples)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_hotpaths.json"),
        help="output JSON path (default: ./BENCH_hotpaths.json)",
    )
    args = parser.parse_args()

    if args.smoke:
        coverage_samples, num_coordinates, num_unitaries, width = 400, 1000, 150, 25
    else:
        coverage_samples, num_coordinates, num_unitaries, width = 1200, 2000, 500, 36

    report = {
        "config": {
            "smoke": args.smoke,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "coverage_cost": bench_coverage_cost(num_coordinates, coverage_samples),
        "weyl": bench_weyl(num_unitaries),
        "swap_choice": bench_swap_choice(width),
        "coverage_cache": bench_coverage_cache(coverage_samples),
        "transpile_digests": bench_transpile_digests(),
    }

    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"[hotpaths] {'smoke' if args.smoke else 'full'} -> {args.out}")
    for section in ("coverage_cost", "weyl", "swap_choice", "coverage_cache"):
        entry = report[section]
        speedup = entry.get("choose_speedup", entry.get("speedup"))
        print(
            f"  {section:<14} speedup {speedup:6.1f}x  equal={entry['equal']}"
        )

    failures = [
        section
        for section in ("coverage_cost", "weyl", "swap_choice", "coverage_cache")
        if not report[section]["equal"]
    ]
    if failures:
        print(f"EQUIVALENCE FAILURES: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
