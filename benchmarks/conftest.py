"""Shared fixtures for the reproduction benchmarks.

Coverage sets and Haar samples are expensive to build, so they are created
once per session and shared across all benchmark modules.  Sample counts and
trial budgets are deliberately smaller than the paper's (which used hours of
compute); EXPERIMENTS.md records the settings used for the reported numbers
and how to scale them up.
"""

from __future__ import annotations

import pytest

from repro.polytopes import build_coverage_set
from repro.weyl.haar import cached_haar_samples

#: Monte-Carlo sample count shared by the coverage / Haar-score benches.
HAAR_SAMPLES = 2500
#: Ansatz samples per coverage polytope (paper uses exact monodromy instead).
COVERAGE_SAMPLES = 700
#: Routing budget (the paper uses 20 layout trials x 20 routing trials).
LAYOUT_TRIALS = 2


@pytest.fixture(scope="session")
def haar_samples():
    return cached_haar_samples(HAAR_SAMPLES, 2024)


@pytest.fixture(scope="session")
def small_haar_samples():
    return cached_haar_samples(400, 2024)


def _coverage(basis: str, mirror: bool, anchor: bool = True):
    return build_coverage_set(
        basis,
        num_samples=COVERAGE_SAMPLES,
        seed=7,
        mirror=mirror,
        anchor=anchor,
    )


@pytest.fixture(scope="session")
def coverage_sets():
    """Exact and mirror-inclusive coverage sets for the iSWAP family."""
    sets = {}
    for basis in ("sqrt_iswap", "iswap_1_3", "iswap_1_4"):
        anchor = basis == "sqrt_iswap"
        sets[(basis, False)] = _coverage(basis, mirror=False, anchor=anchor)
        sets[(basis, True)] = _coverage(basis, mirror=True, anchor=anchor)
    return sets


@pytest.fixture(scope="session")
def sqrt_iswap_coverage(coverage_sets):
    return coverage_sets[("sqrt_iswap", False)]


@pytest.fixture(scope="session")
def sqrt_iswap_mirror_coverage(coverage_sets):
    return coverage_sets[("sqrt_iswap", True)]


@pytest.fixture(scope="session")
def cnot_coverage():
    return _coverage("cx", mirror=False, anchor=False)


@pytest.fixture(scope="session")
def cnot_mirror_coverage():
    return _coverage("cx", mirror=True, anchor=False)
