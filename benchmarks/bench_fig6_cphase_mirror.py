"""Fig. 6 — the CPHASE family mirrors into the pSWAP family.

Every CPHASE(theta) lies inside the sqrt(iSWAP) k=2 coverage region, while
its mirror (a parametric SWAP) generally does not — mirroring a CPHASE is
only worthwhile when it saves a SWAP, not for decomposition cost.
"""

from __future__ import annotations

import numpy as np

from repro.weyl import PI4, cphase_coordinate, mirror_coordinate


def test_fig6_cphase_mirrors_to_pswap(benchmark, sqrt_iswap_coverage):
    thetas = np.linspace(0.15, np.pi, 12)

    def run():
        rows = []
        for theta in thetas:
            original = cphase_coordinate(theta).to_tuple()
            mirrored = mirror_coordinate(original)
            rows.append(
                (
                    theta,
                    sqrt_iswap_coverage.cost_of(original),
                    sqrt_iswap_coverage.cost_of(mirrored),
                    mirrored,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[fig6] theta, CPHASE cost, mirrored (pSWAP) cost")
    for theta, cost, mirror_cost, mirrored in rows:
        print(f"  {theta:5.2f}  {cost:.2f}  {mirror_cost:.2f}")
        # The mirror of every CPHASE sits on the pSWAP edge (a = b = pi/4).
        assert np.isclose(mirrored[0], PI4, atol=1e-7)
        assert np.isclose(mirrored[1], PI4, atol=1e-7)
        # CPHASE gates fit in k=2; their mirrors need at least as many pulses.
        assert cost <= 1.0 + 1e-9
        assert mirror_cost >= cost - 1e-9
    # A generic pSWAP needs k=3 in the sqrt(iSWAP) basis.
    generic = [row for row in rows if 0.5 < row[0] < np.pi - 0.5]
    assert all(row[2] >= 1.5 - 1e-9 for row in generic)
