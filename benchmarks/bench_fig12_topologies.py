"""Fig. 12 — MIRAGE vs Qiskit-SABRE on heavy-hex and square-lattice machines.

Paper averages: heavy-hex depth -31.2%, gate cost -17.0%, SWAPs -56.2%;
square lattice depth -29.6%, gate cost -10.3%, SWAPs -59.9%.

The bench routes a four-circuit subset of Table III per topology with a
reduced trial budget (pure-Python runtime); EXPERIMENTS.md records the
full-suite numbers obtained offline with a larger budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.library import benchmark_circuit
from repro.core import compare_methods
from repro.transpiler import heavy_hex_topology, square_lattice_topology

SUBSET = ["seca", "qec9xz", "bigadder", "sat"]
TOPOLOGIES = {
    "heavy-hex-57": heavy_hex_topology(57),
    "square-6x6": square_lattice_topology(6),
}
PAPER_DEPTH_REDUCTION = {"heavy-hex-57": 0.312, "square-6x6": 0.296}


@pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
def test_fig12_topology_comparison(benchmark, topology_name, sqrt_iswap_coverage):
    topology = TOPOLOGIES[topology_name]
    circuits = [benchmark_circuit(name) for name in SUBSET]

    def run():
        rows = {}
        for circuit in circuits:
            rows[circuit.name] = compare_methods(
                circuit, topology, layout_trials=2, seed=11, selections=("depth",)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    depth_gains, cost_gains, swap_gains = [], [], []
    print(f"\n[fig12] {topology_name}: circuit, sabre/mirage depth, gates, swaps")
    for name, results in rows.items():
        sabre = results["sabre"]
        mirage = results["mirage-depth"]
        print(
            f"  {name:<16} depth {sabre.metrics.depth:7.1f} -> {mirage.metrics.depth:7.1f}   "
            f"cost {sabre.metrics.total_cost:7.1f} -> {mirage.metrics.total_cost:7.1f}   "
            f"swaps {sabre.swaps_added:3d} -> {mirage.swaps_added:3d} "
            f"(mirror rate {mirage.mirror_acceptance_rate:.2f})"
        )
        depth_gains.append(
            (sabre.metrics.depth - mirage.metrics.depth) / sabre.metrics.depth
        )
        cost_gains.append(
            (sabre.metrics.total_cost - mirage.metrics.total_cost)
            / sabre.metrics.total_cost
        )
        if sabre.swaps_added:
            swap_gains.append(
                (sabre.swaps_added - mirage.swaps_added) / sabre.swaps_added
            )
    print(
        f"  mean: depth -{np.mean(depth_gains):.1%} "
        f"(paper -{PAPER_DEPTH_REDUCTION[topology_name]:.1%}), "
        f"gate cost -{np.mean(cost_gains):.1%}, swaps -{np.mean(swap_gains):.1%}"
    )
    # Shape check: MIRAGE reduces depth and removes a large fraction of SWAPs.
    assert np.mean(depth_gains) > 0.05
    assert np.mean(swap_gains) > 0.25
