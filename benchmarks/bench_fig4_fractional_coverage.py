"""Fig. 4 — coverage of the cube and fourth roots of iSWAP at k = 2,
and the maximum depth needed for full coverage with and without mirrors.

Paper observations: both fractional gates gain substantial k=2 coverage from
mirrors, and the fourth root's worst-case depth drops from k=6 to k=4 when
mirroring is allowed.
"""

from __future__ import annotations

import numpy as np


def test_fig4_fractional_iswap_coverage(benchmark, coverage_sets, haar_samples):
    def run():
        rows = {}
        for basis in ("iswap_1_3", "iswap_1_4"):
            exact = coverage_sets[(basis, False)].polytope_for_depth(2).haar_volume(
                haar_samples
            )
            mirrored = coverage_sets[(basis, True)].polytope_for_depth(2).haar_volume(
                haar_samples
            )
            rows[basis] = (exact, mirrored)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for basis, (exact, mirrored) in rows.items():
        print(f"[fig4] {basis} k=2 coverage: exact={exact:.3f}, mirror={mirrored:.3f}")
        assert mirrored >= exact


def test_fig4_mirror_reduces_worst_case_depth(benchmark, coverage_sets, haar_samples):
    def run():
        exact = coverage_sets[("iswap_1_4", False)]
        mirrored = coverage_sets[("iswap_1_4", True)]
        exact_costs = np.array([exact.cost_of(row) for row in haar_samples[:800]])
        mirror_costs = np.array([mirrored.cost_of(row) for row in haar_samples[:800]])
        return exact_costs, mirror_costs

    exact_costs, mirror_costs = benchmark.pedantic(run, rounds=1, iterations=1)
    exact_depth = exact_costs.max() / 0.25
    mirror_depth_p99 = np.quantile(mirror_costs, 0.99) / 0.25
    print(
        f"\n[fig4] 4th-root iSWAP worst-case depth: exact k={exact_depth:.0f} "
        f"(paper 6), mirror p99 k={mirror_depth_p99:.0f} (paper <= 4)"
    )
    assert exact_depth >= 5
    assert mirror_depth_p99 <= exact_depth
