"""Fig. 3 — Weyl-chamber coverage of CNOT and sqrt(iSWAP) at k = 2.

Paper values: CNOT k=2 coverage is a zero-volume plane with or without
mirrors; sqrt(iSWAP) k=2 covers 79.0% of the Haar-weighted chamber and
94.4% once mirror gates are allowed.
"""

from __future__ import annotations


def _volumes(coverage, samples):
    return coverage.polytope_for_depth(2).haar_volume(samples)


def test_fig3_sqrt_iswap_coverage(
    benchmark, sqrt_iswap_coverage, sqrt_iswap_mirror_coverage, haar_samples
):
    def run():
        exact = _volumes(sqrt_iswap_coverage, haar_samples)
        mirrored = _volumes(sqrt_iswap_mirror_coverage, haar_samples)
        return exact, mirrored

    exact, mirrored = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n[fig3] sqrt(iSWAP) k=2 coverage: exact={exact:.3f} (paper 0.790), "
        f"mirror={mirrored:.3f} (paper 0.944)"
    )
    assert 0.70 < exact < 0.88
    assert 0.88 < mirrored <= 1.0
    assert mirrored > exact


def test_fig3_cnot_coverage_is_planar(
    benchmark, cnot_coverage, cnot_mirror_coverage, haar_samples
):
    def run():
        exact = _volumes(cnot_coverage, haar_samples)
        mirrored = _volumes(cnot_mirror_coverage, haar_samples)
        return exact, mirrored

    exact, mirrored = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n[fig3] CNOT k=2 coverage: exact={exact:.4f}, mirror={mirrored:.4f} "
        "(paper: both 0 — planar slices)"
    )
    assert exact < 0.02
    assert mirrored < 0.04
