"""Ablation — routing-trial budget vs solution quality (paper Section VI-C).

The paper argues that transpiler speed matters because it buys more
independent trials, which buys solution quality.  This bench sweeps the
layout-trial budget for MIRAGE on one circuit and checks that quality is
monotone (non-increasing depth) in the budget.
"""

from __future__ import annotations

from repro.circuits.library import benchmark_circuit
from repro.core import transpile
from repro.transpiler import square_lattice_topology

BUDGETS = (1, 2, 4)


def test_ablation_trial_budget(benchmark, sqrt_iswap_coverage):
    circuit = benchmark_circuit("seca")
    lattice = square_lattice_topology(4)

    def run():
        depths = {}
        for budget in BUDGETS:
            result = transpile(circuit, lattice, method="mirage", selection="depth",
                               layout_trials=budget, use_vf2=False, seed=21,
                               coverage=sqrt_iswap_coverage)
            depths[budget] = result.metrics.depth
        return depths

    depths = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[ablation] layout trials -> depth:", depths)
    assert depths[max(BUDGETS)] <= depths[min(BUDGETS)] + 1e-9


def test_ablation_cache_speedup(benchmark, sqrt_iswap_coverage):
    """Cost-lookup caching ablation (paper Fig. 13a)."""
    from repro.weyl import CNOT_COORD

    def run():
        sqrt_iswap_coverage.clear_cache()
        for _ in range(2000):
            sqrt_iswap_coverage.cost_of(CNOT_COORD)
        return sqrt_iswap_coverage.cache_info()

    info = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[ablation] coverage cost cache:", info)
    assert info["hits"] == 1999
    assert info["misses"] == 1
