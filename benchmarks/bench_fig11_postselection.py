"""Fig. 11 — post-selection metric: SWAP count vs decomposition-aware depth.

Paper: selecting trials by minimum SWAPs already gives a 24.1% average depth
reduction over the baseline; selecting by depth adds another 7.5% (29.5%
total) while leaving total gate count essentially unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.library import benchmark_circuit
from repro.core import compare_methods
from repro.transpiler import square_lattice_topology

CIRCUITS = ["seca", "qec9xz", "sat", "bigadder"]
LATTICE = square_lattice_topology(6)


def test_fig11_postselection_metrics(benchmark, sqrt_iswap_coverage):
    circuits = [benchmark_circuit(name) for name in CIRCUITS]

    def run():
        rows = {}
        for circuit in circuits:
            rows[circuit.name] = compare_methods(
                circuit, LATTICE, layout_trials=2, seed=11,
                selections=("swaps", "depth"),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[fig11] depth: qiskit vs mirage-swaps vs mirage-depth")
    swap_gains, depth_gains = [], []
    for name, results in rows.items():
        base = results["sabre"].metrics.depth
        via_swaps = results["mirage-swaps"].metrics.depth
        via_depth = results["mirage-depth"].metrics.depth
        print(f"  {name:<16} {base:8.1f} {via_swaps:8.1f} {via_depth:8.1f}")
        swap_gains.append((base - via_swaps) / base)
        depth_gains.append((base - via_depth) / base)
    print(f"  mean reduction: mirage-swaps {np.mean(swap_gains):.1%} (paper 24.1%), "
          f"mirage-depth {np.mean(depth_gains):.1%} (paper 29.5%)")
    assert np.mean(depth_gains) > 0.05
    assert np.mean(depth_gains) >= np.mean(swap_gains) - 0.05
