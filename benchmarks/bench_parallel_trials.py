"""Batch fan-out benchmark: trial/circuit parallelism and trial transport.

The paper's experimental setup (Section V) runs 20 layout trials x 20
routing trials per circuit over large circuit suites.  Two independent
axes of parallelism exist:

* *trial fan-out* — one circuit, its independent routing trials spread
  over a process pool (the PR-1 design, measured here on one wide QFT);
* *circuit fan-out* — the batch engine plans every circuit, pools all
  circuits' trials onto the shared executor, and selects each circuit's
  winner.  Workers stay busy across circuit boundaries.

On top of circuit fan-out the bench compares the *transport/scheduling*
variants:

* the **streaming** scheduler over **shared memory** (the default where
  POSIX shm exists): payloads cross the process boundary once through
  named segments, chunks carry O(1)-byte handles, and planning/selection
  overlap the in-flight trials;
* the **barrier** scheduler over shared memory (three phases, one
  ``map_shared`` dispatch);
* the **blob fallback** (``MIRAGE_SHM_DISABLE=1``): the pre-shm path
  re-shipping the pickled payload with every chunk.

Run ``python benchmarks/bench_parallel_trials.py --smoke`` for the
CI-sized run, without flags for the default sizes, or with
``MIRAGE_BENCH_FULL=1`` for the paper's 20 x 20 budget.  The
machine-readable result lands in ``BENCH_batch_fanout.json`` (override
with ``--out``); ``--assert-shm`` additionally pins the shared-memory
transport invariants (≥ 1 segment, O(1) bytes per chunk, at most one
full payload shipped per batch) — CI passes it on Linux runners.  Every
mode must agree byte-for-byte on the chosen routings — per-trial
``SeedSequence`` streams make the search order-independent — and the
bench asserts exactly that.  The headline speedups need real cores; on a
single-core host the JSON records the ratios without judging them.
"""

from __future__ import annotations

import argparse
import contextlib
import hashlib
import json
import os
import platform
import time
from pathlib import Path

from repro.circuits.library import ghz, qft, twolocal_full
from repro.core import transpile, transpile_many
from repro.polytopes import get_coverage_set
from repro.transpiler import (
    ProcessExecutor,
    SerialExecutor,
    line_topology,
    shm_transport_enabled,
)

FULL = os.environ.get("MIRAGE_BENCH_FULL", "") not in ("", "0")


@contextlib.contextmanager
def _shm_disabled():
    """Temporarily force the blob-per-chunk transport fallback."""
    previous = os.environ.get("MIRAGE_SHM_DISABLE")
    os.environ["MIRAGE_SHM_DISABLE"] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ["MIRAGE_SHM_DISABLE"]
        else:
            os.environ["MIRAGE_SHM_DISABLE"] = previous


def circuit_digest(circuit) -> str:
    """Stable digest of a circuit's gate stream (names, params, qubits)."""
    lines = []
    for instruction in circuit:
        gate = instruction.gate
        params = ",".join(f"{p:.12e}" for p in gate.params)
        lines.append(f"{gate.name}({params})@{instruction.qubits}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def batch_digests(batch) -> list[str]:
    return [circuit_digest(result.circuit) for result in batch]


def _sizes(smoke: bool) -> dict:
    if FULL:
        return {
            "layout_trials": 20, "routing_trials": 20, "wide_width": 8,
            "batch_copies": 8, "batch_layout_trials": 20,
        }
    if smoke:
        return {
            "layout_trials": 4, "routing_trials": 2, "wide_width": 6,
            "batch_copies": 2, "batch_layout_trials": 2,
        }
    return {
        "layout_trials": 6, "routing_trials": 2, "wide_width": 8,
        "batch_copies": 4, "batch_layout_trials": 4,
    }


def _small_circuit_workload(copies: int) -> list:
    """Many small circuits — the workload circuit-level fan-out targets."""
    base = [qft(4), twolocal_full(4), ghz(5), qft(5), twolocal_full(5)]
    return (base * copies)[: len(base) * copies]


def bench_trial_fanout(coverage, sizes) -> dict:
    """PR-1 comparison: one wide circuit, serial vs process-pool trials."""

    def run(executor):
        start = time.perf_counter()
        result = transpile(
            qft(sizes["wide_width"]),
            line_topology(sizes["wide_width"]),
            method="mirage",
            selection="depth",
            layout_trials=sizes["layout_trials"],
            refinement_rounds=2,
            routing_trials=sizes["routing_trials"],
            coverage=coverage,
            use_vf2=False,
            seed=13,
            executor=executor,
        )
        return time.perf_counter() - start, result

    serial_seconds, serial = run(SerialExecutor())
    with ProcessExecutor() as pool:
        # Pre-warm the pool so worker start-up stays out of the timed
        # window — the bench measures parallelism, not fork cost.
        pool.map(len, [(), ()])
        process_seconds, parallel = run(pool)

    assert circuit_digest(serial.circuit) == circuit_digest(parallel.circuit)
    assert serial.trial_index == parallel.trial_index
    return {
        "circuit": f"qft-{sizes['wide_width']}",
        "budget": f"{sizes['layout_trials']}x{sizes['routing_trials']}",
        "serial_s": round(serial_seconds, 4),
        "processes_s": round(process_seconds, 4),
        "speedup": round(serial_seconds / process_seconds, 3),
        "digest": circuit_digest(serial.circuit),
        "stage_seconds": {
            name: round(seconds, 4)
            for name, seconds in serial.stage_seconds().items()
        },
    }


def bench_batch_fanout(coverage, sizes) -> dict:
    """Many small circuits: fan-out modes, schedulers and trial transport."""
    circuits = _small_circuit_workload(sizes["batch_copies"])
    width = max(circuit.num_qubits for circuit in circuits)
    coupling = line_topology(width)
    kwargs = dict(
        coverage=coverage,
        use_vf2=False,
        layout_trials=sizes["batch_layout_trials"],
        refinement_rounds=2,
        seed=29,
    )

    def run(fanout, executor=None, scheduler="auto"):
        start = time.perf_counter()
        batch = transpile_many(
            circuits, coupling, fanout=fanout, scheduler=scheduler,
            executor=executor, **kwargs,
        )
        return time.perf_counter() - start, batch

    sequential_seconds, sequential = run("trials")
    with ProcessExecutor() as pool:
        # Pre-warm the pool so worker start-up stays out of the timed
        # window — the bench measures parallelism, not fork cost.
        pool.map(len, [(), ()])
        trials_seconds, trials_batch = run("trials", pool)
        stream_seconds, stream_batch = run("circuits", pool, "stream")
        barrier_seconds, barrier_batch = run("circuits", pool, "barrier")
    # The blob fallback needs its own pool: the transport choice is read
    # when the dispatch opens, and a fresh pool keeps worker-side payload
    # memos from leaking between transports.
    with _shm_disabled():
        with ProcessExecutor() as pool:
            pool.map(len, [(), ()])
            blob_seconds, blob_batch = run("circuits", pool)

    reference = batch_digests(sequential)
    assert batch_digests(trials_batch) == reference
    assert batch_digests(stream_batch) == reference
    assert batch_digests(barrier_batch) == reference
    assert batch_digests(blob_batch) == reference

    # Blob mode ships the full payload with every chunk, so its per-chunk
    # shipped bytes estimate the pickled payload size — which makes the
    # shm saving quantifiable: total shm transport over one payload.
    blob_dispatch = blob_batch.dispatch
    payload_bytes = (
        blob_dispatch["bytes_shipped"] // max(1, blob_dispatch["chunks"])
    )
    stream_dispatch = stream_batch.dispatch
    shipped_payload_ratio = (
        stream_dispatch["bytes_shipped"] / payload_bytes
        if payload_bytes
        else 0.0
    )

    return {
        "workload": {
            "circuits": len(circuits),
            "widths": sorted({c.num_qubits for c in circuits}),
            "layout_trials": sizes["batch_layout_trials"],
            "total_trials": len(circuits) * sizes["batch_layout_trials"],
        },
        "sequential_serial_s": round(sequential_seconds, 4),
        "trials_processes_s": round(trials_seconds, 4),
        "circuits_processes_s": round(stream_seconds, 4),
        "circuits_barrier_s": round(barrier_seconds, 4),
        "circuits_blob_s": round(blob_seconds, 4),
        "speedup_circuits_vs_sequential": round(
            sequential_seconds / stream_seconds, 3
        ),
        "speedup_circuits_vs_trials": round(
            trials_seconds / stream_seconds, 3
        ),
        "speedup_stream_vs_blob": round(blob_seconds / stream_seconds, 3),
        "dispatch": stream_dispatch,
        "dispatch_barrier": barrier_batch.dispatch,
        "dispatch_blob": blob_dispatch,
        "payload_bytes_estimate": payload_bytes,
        "shipped_payload_ratio": round(shipped_payload_ratio, 6),
        "overlap_seconds": stream_dispatch.get("overlap_seconds", 0.0),
        "shm_transport": shm_transport_enabled(),
        "digest": hashlib.sha256("".join(reference).encode()).hexdigest(),
        "identical_across_modes": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small budgets)")
    parser.add_argument("--out", default="BENCH_batch_fanout.json",
                        help="output JSON path")
    parser.add_argument("--assert-shm", action="store_true",
                        help="fail unless the shared-memory transport ran "
                             "and shipped O(1) bytes per chunk")
    args = parser.parse_args()
    sizes = _sizes(args.smoke)
    cores = os.cpu_count() or 1

    coverage = get_coverage_set("sqrt_iswap", num_samples=700, seed=7)

    trial = bench_trial_fanout(coverage, sizes)
    print(f"[trial-fanout]  {trial['circuit']} budget {trial['budget']}: "
          f"serial {trial['serial_s']:.2f}s, processes "
          f"{trial['processes_s']:.2f}s ({trial['speedup']:.2f}x)")

    batch = bench_batch_fanout(coverage, sizes)
    workload = batch["workload"]
    print(f"[batch-fanout]  {workload['circuits']} circuits x "
          f"{workload['layout_trials']} trials "
          f"({workload['total_trials']} pooled trials):")
    print(f"  sequential+serial       {batch['sequential_serial_s']:8.2f} s")
    print(f"  trial fan-out (proc)    {batch['trials_processes_s']:8.2f} s")
    print(f"  circuit stream (shm)    {batch['circuits_processes_s']:8.2f} s "
          f"({batch['speedup_circuits_vs_sequential']:.2f}x vs sequential, "
          f"{batch['speedup_circuits_vs_trials']:.2f}x vs trial fan-out)")
    print(f"  circuit barrier (shm)   {batch['circuits_barrier_s']:8.2f} s")
    print(f"  circuit barrier (blob)  {batch['circuits_blob_s']:8.2f} s "
          f"({batch['speedup_stream_vs_blob']:.2f}x stream-vs-blob)")
    print(f"  transport: payload ~{batch['payload_bytes_estimate']} B, "
          f"shm shipped {batch['shipped_payload_ratio']:.4f} payloads total "
          f"(blob ships 1 per chunk), overlap {batch['overlap_seconds']:.3f} s")
    print(f"  dispatch: {batch['dispatch']}")

    payload = {
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": cores,
            "mode": "full" if FULL else ("smoke" if args.smoke else "default"),
            "unix_time": int(time.time()),
        },
        "trial_fanout": trial,
        "batch_fanout": batch,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    if args.assert_shm:
        dispatch = batch["dispatch"]
        assert batch["shm_transport"], (
            "--assert-shm requires POSIX shared memory "
            "(is MIRAGE_SHM_DISABLE set?)"
        )
        assert dispatch["shm_segments"] >= 1, dispatch
        per_chunk = dispatch["bytes_shipped"] / max(1, dispatch["chunks"])
        assert per_chunk <= 512, (
            f"shm transport should ship O(1) bytes per chunk, got "
            f"{per_chunk:.0f} B/chunk"
        )
        assert batch["shipped_payload_ratio"] <= 1.0, (
            "shm-mode dispatch should ship at most one full payload total, "
            f"got {batch['shipped_payload_ratio']} payloads"
        )
        print(f"shm transport OK: {dispatch['shm_segments']} segment(s), "
              f"{per_chunk:.0f} B/chunk, "
              f"{batch['shipped_payload_ratio']:.4f} payloads shipped")

    # The headline claim needs real cores to show; a single-core host can
    # only validate determinism (which the digest asserts above did).
    if cores >= 4 and not args.smoke:
        assert batch["speedup_circuits_vs_sequential"] >= 1.3, (
            "circuit-level fan-out should be >=1.3x on a multi-core host, "
            f"got {batch['speedup_circuits_vs_sequential']}x on {cores} cores"
        )


if __name__ == "__main__":
    main()
