"""Serial vs. parallel trial execution at the paper's routing budget.

The paper's experimental setup (Section V) runs 20 layout trials x 20
routing trials per circuit.  The trials are independent, so the staged
pipeline can fan them out over a process pool; this bench compares the
serial executor against the process executor on the same budget and
prints the per-stage timing report the pipeline produces (paper Fig. 13
reports stage runtimes).

The full 20 x 20 budget is slow in pure Python, so the default budget is
reduced; set ``MIRAGE_BENCH_FULL=1`` to run the paper's numbers.  The two
executors must agree bit-for-bit on the chosen routing — per-trial
``SeedSequence`` streams make the search order-independent — and the
bench asserts exactly that.
"""

from __future__ import annotations

import os

from repro.circuits.library import qft
from repro.core import transpile
from repro.transpiler import ProcessExecutor, SerialExecutor, line_topology

FULL = os.environ.get("MIRAGE_BENCH_FULL", "") not in ("", "0")
#: Paper budget is 20 x 20; the reduced default keeps the bench quick.
LAYOUT_TRIALS = 20 if FULL else 6
ROUTING_TRIALS = 20 if FULL else 2
WIDTH = 8


def _run(executor, coverage) -> tuple[float, object]:
    result = transpile(
        qft(WIDTH),
        line_topology(WIDTH),
        method="mirage",
        selection="depth",
        layout_trials=LAYOUT_TRIALS,
        refinement_rounds=2,
        routing_trials=ROUTING_TRIALS,
        coverage=coverage,
        use_vf2=False,
        seed=13,
        executor=executor,
    )
    return result.runtime_seconds, result


def test_parallel_trials_match_serial(benchmark, sqrt_iswap_coverage):
    def run():
        serial_seconds, serial = _run(SerialExecutor(), sqrt_iswap_coverage)
        # Pre-warm the pool so worker start-up stays out of the timed
        # window — the bench measures trial-level parallelism, not fork cost.
        with ProcessExecutor() as pool:
            pool.map(len, [(), ()])
            process_seconds, parallel = _run(pool, sqrt_iswap_coverage)
        return serial_seconds, serial, process_seconds, parallel

    serial_seconds, serial, process_seconds, parallel = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    budget = f"{LAYOUT_TRIALS}x{ROUTING_TRIALS}"
    print(f"\n[parallel-trials] qft-{WIDTH}, budget {budget}")
    print(f"  serial    {serial_seconds:8.2f} s")
    print(f"  processes {process_seconds:8.2f} s "
          f"(speedup {serial_seconds / process_seconds:.2f}x)")
    print("  per-stage seconds (serial run):")
    for name, seconds in serial.stage_seconds().items():
        print(f"    {name:<12} {seconds:8.3f}")

    # Identical routing regardless of executor (order-independent trials).
    assert serial.trial_index == parallel.trial_index
    assert serial.swaps_added == parallel.swaps_added
    assert serial.metrics.depth == parallel.metrics.depth
    assert [(i.gate.name, i.qubits) for i in serial.circuit] == [
        (i.gate.name, i.qubits) for i in parallel.circuit
    ]
    # The routing stage dominates the pipeline at this budget.
    stage_seconds = serial.stage_seconds()
    assert stage_seconds["route"] > 0.5 * sum(stage_seconds.values())
