"""Batch fan-out benchmark: trial/circuit parallelism and trial transport.

The paper's experimental setup (Section V) runs 20 layout trials x 20
routing trials per circuit over large circuit suites.  Two independent
axes of parallelism exist:

* *trial fan-out* — one circuit, its independent routing trials spread
  over a process pool (the PR-1 design, measured here on one wide QFT);
* *circuit fan-out* — the batch engine plans every circuit, pools all
  circuits' trials onto the shared executor, and selects each circuit's
  winner.  Workers stay busy across circuit boundaries.

On top of circuit fan-out the bench compares the *transport/scheduling*
variants:

* the **streaming** scheduler over **shared memory** (the default where
  POSIX shm exists): payloads cross the process boundary once through
  named segments, chunks carry O(1)-byte handles, and planning/selection
  overlap the in-flight trials;
* the **barrier** scheduler over shared memory (three phases, one
  ``map_shared`` dispatch);
* the **blob fallback** (``MIRAGE_SHM_DISABLE=1``): the pre-shm path
  re-shipping the pickled payload with every chunk.

A third axis is the *routing kernel*: the flat int-array kernel
(``MIRAGE_ROUTE_KERNEL=flat``, the default) against the object-graph
router (``=object``) on the ``route`` stage, serial and under trial
fan-out, with byte-identity between the two asserted on every run.

A fourth axis is *planning placement* on a many-wide-circuits workload,
where the front pipeline (``clean → … → consolidate → vf2``) rivals the
trial phase: ``plan="local"`` runs every front pipeline on the
dispatching thread while trials overlap, ``plan="executor"`` spreads the
front pipelines across the worker pool through the same streaming
session the trials use.

Run ``python benchmarks/bench_parallel_trials.py --smoke`` for the
CI-sized run, without flags for the default sizes, or with
``MIRAGE_BENCH_FULL=1`` for the paper's 20 x 20 budget.  The
machine-readable result lands in ``BENCH_batch_fanout.json`` (override
with ``--out``); ``--assert-shm`` additionally pins the shared-memory
transport invariants (≥ 1 segment, O(1) bytes per chunk, at most one
full payload shipped per batch) and ``--assert-zero-copy`` pins the
out-of-band layout (workers materialise index headers, never payload
bytes) — CI passes both on Linux runners.  Every mode must agree
byte-for-byte on the chosen routings — per-trial ``SeedSequence``
streams make the search order-independent — and the bench asserts
exactly that.  The headline speedups need real cores; on a single-core
host the JSON records the ratios without judging them.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import hashlib
import json
import os
import platform
import time
from pathlib import Path

from repro.circuits.library import ghz, qft, twolocal_full
from repro.core import transpile, transpile_many
from repro.polytopes import get_coverage_set
from repro.transpiler import (
    ProcessExecutor,
    SerialExecutor,
    line_topology,
    shm_transport_enabled,
)

FULL = os.environ.get("MIRAGE_BENCH_FULL", "") not in ("", "0")


@contextlib.contextmanager
def _shm_disabled():
    """Temporarily force the blob-per-chunk transport fallback."""
    previous = os.environ.get("MIRAGE_SHM_DISABLE")
    os.environ["MIRAGE_SHM_DISABLE"] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ["MIRAGE_SHM_DISABLE"]
        else:
            os.environ["MIRAGE_SHM_DISABLE"] = previous


@contextlib.contextmanager
def _route_kernel(mode: str):
    """Pin the routing-kernel implementation for the enclosed run."""
    previous = os.environ.get("MIRAGE_ROUTE_KERNEL")
    os.environ["MIRAGE_ROUTE_KERNEL"] = mode
    try:
        yield
    finally:
        if previous is None:
            del os.environ["MIRAGE_ROUTE_KERNEL"]
        else:
            os.environ["MIRAGE_ROUTE_KERNEL"] = previous


def _prewarm(pool: ProcessExecutor) -> None:
    """Spawn every worker before the timed window opens.

    ``ProcessPoolExecutor`` forks workers on demand, so a warm-up must
    offer at least one task per worker — two, to be safe against chunk
    coalescing — or part of the fork/import cost lands inside the
    measurement.
    """
    workers = pool.max_workers or os.cpu_count() or 1
    pool.map(len, [()] * (2 * workers))


def circuit_digest(circuit) -> str:
    """Stable digest of a circuit's gate stream (names, params, qubits)."""
    lines = []
    for instruction in circuit:
        gate = instruction.gate
        params = ",".join(f"{p:.12e}" for p in gate.params)
        lines.append(f"{gate.name}({params})@{instruction.qubits}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def batch_digests(batch) -> list[str]:
    return [circuit_digest(result.circuit) for result in batch]


def _sizes(smoke: bool) -> dict:
    if FULL:
        return {
            "layout_trials": 20, "routing_trials": 20, "wide_width": 8,
            "batch_copies": 8, "batch_layout_trials": 20,
            "plan_copies": 6, "plan_width": 8, "plan_layout_trials": 4,
        }
    if smoke:
        return {
            "layout_trials": 4, "routing_trials": 2, "wide_width": 6,
            "batch_copies": 2, "batch_layout_trials": 2,
            "plan_copies": 2, "plan_width": 6, "plan_layout_trials": 2,
        }
    return {
        "layout_trials": 6, "routing_trials": 2, "wide_width": 8,
        "batch_copies": 4, "batch_layout_trials": 4,
        "plan_copies": 4, "plan_width": 7, "plan_layout_trials": 2,
    }


def _small_circuit_workload(copies: int) -> list:
    """Many small circuits — the workload circuit-level fan-out targets."""
    base = [qft(4), twolocal_full(4), ghz(5), qft(5), twolocal_full(5)]
    return (base * copies)[: len(base) * copies]


def bench_trial_fanout(coverage, sizes) -> dict:
    """PR-1 comparison: one wide circuit, serial vs process-pool trials."""

    def run(executor):
        start = time.perf_counter()
        result = transpile(
            qft(sizes["wide_width"]),
            line_topology(sizes["wide_width"]),
            method="mirage",
            selection="depth",
            layout_trials=sizes["layout_trials"],
            refinement_rounds=2,
            routing_trials=sizes["routing_trials"],
            coverage=coverage,
            use_vf2=False,
            seed=13,
            executor=executor,
        )
        return time.perf_counter() - start, result

    serial_seconds, serial = run(SerialExecutor())
    with ProcessExecutor() as pool:
        # Pre-warm the pool so worker start-up stays out of the timed
        # window — the bench measures parallelism, not fork cost.
        _prewarm(pool)
        process_seconds, parallel = run(pool)

    assert circuit_digest(serial.circuit) == circuit_digest(parallel.circuit)
    assert serial.trial_index == parallel.trial_index
    return {
        "circuit": f"qft-{sizes['wide_width']}",
        "budget": f"{sizes['layout_trials']}x{sizes['routing_trials']}",
        "serial_s": round(serial_seconds, 4),
        "processes_s": round(process_seconds, 4),
        "speedup": round(serial_seconds / process_seconds, 3),
        "digest": circuit_digest(serial.circuit),
        "stage_seconds": {
            name: round(seconds, 4)
            for name, seconds in serial.stage_seconds().items()
        },
    }


def bench_batch_fanout(coverage, sizes) -> dict:
    """Many small circuits: fan-out modes, schedulers and trial transport."""
    circuits = _small_circuit_workload(sizes["batch_copies"])
    width = max(circuit.num_qubits for circuit in circuits)
    coupling = line_topology(width)
    kwargs = dict(
        coverage=coverage,
        use_vf2=False,
        layout_trials=sizes["batch_layout_trials"],
        refinement_rounds=2,
        seed=29,
    )

    def run(fanout, executor=None, scheduler="auto"):
        start = time.perf_counter()
        batch = transpile_many(
            circuits, coupling, fanout=fanout, scheduler=scheduler,
            executor=executor, **kwargs,
        )
        return time.perf_counter() - start, batch

    sequential_seconds, sequential = run("trials")
    with ProcessExecutor() as pool:
        # Pre-warm the pool so worker start-up stays out of the timed
        # window — the bench measures parallelism, not fork cost.
        _prewarm(pool)
        trials_seconds, trials_batch = run("trials", pool)
        stream_seconds, stream_batch = run("circuits", pool, "stream")
        barrier_seconds, barrier_batch = run("circuits", pool, "barrier")
    # The blob fallback needs its own pool: the transport choice is read
    # when the dispatch opens, and a fresh pool keeps worker-side payload
    # memos from leaking between transports.
    with _shm_disabled():
        with ProcessExecutor() as pool:
            _prewarm(pool)
            blob_seconds, blob_batch = run("circuits", pool)

    reference = batch_digests(sequential)
    assert batch_digests(trials_batch) == reference
    assert batch_digests(stream_batch) == reference
    assert batch_digests(barrier_batch) == reference
    assert batch_digests(blob_batch) == reference

    # Blob mode ships the full payload with every chunk, so its per-chunk
    # shipped bytes estimate the pickled payload size — which makes the
    # shm saving quantifiable: total shm transport over one payload.
    blob_dispatch = blob_batch.dispatch
    payload_bytes = (
        blob_dispatch["bytes_shipped"] // max(1, blob_dispatch["chunks"])
    )
    stream_dispatch = stream_batch.dispatch
    shipped_payload_ratio = (
        stream_dispatch["bytes_shipped"] / payload_bytes
        if payload_bytes
        else 0.0
    )

    return {
        "workload": {
            "circuits": len(circuits),
            "widths": sorted({c.num_qubits for c in circuits}),
            "layout_trials": sizes["batch_layout_trials"],
            "total_trials": len(circuits) * sizes["batch_layout_trials"],
        },
        "sequential_serial_s": round(sequential_seconds, 4),
        "trials_processes_s": round(trials_seconds, 4),
        "circuits_processes_s": round(stream_seconds, 4),
        "circuits_barrier_s": round(barrier_seconds, 4),
        "circuits_blob_s": round(blob_seconds, 4),
        "speedup_circuits_vs_sequential": round(
            sequential_seconds / stream_seconds, 3
        ),
        "speedup_circuits_vs_trials": round(
            trials_seconds / stream_seconds, 3
        ),
        "speedup_stream_vs_blob": round(blob_seconds / stream_seconds, 3),
        "dispatch": stream_dispatch,
        "dispatch_barrier": barrier_batch.dispatch,
        "dispatch_blob": blob_dispatch,
        "payload_bytes_estimate": payload_bytes,
        "shipped_payload_ratio": round(shipped_payload_ratio, 6),
        "overlap_seconds": stream_dispatch.get("overlap_seconds", 0.0),
        "shm_transport": shm_transport_enabled(),
        "digest": hashlib.sha256("".join(reference).encode()).hexdigest(),
        "identical_across_modes": True,
    }


def _wide_circuit_workload(copies: int, width: int) -> list:
    """Many *wide* circuits — the workload executor-side planning targets.

    Wide circuits make the front pipeline (consolidation's Weyl
    extraction above all) rival the trial phase, which is exactly when
    planning on the dispatching thread becomes the bottleneck.
    """
    base = [qft(width), twolocal_full(width - 1), qft(width - 1)]
    return base * copies


def bench_plan_fanout(coverage, sizes) -> dict:
    """Planning-phase breakdown: local vs executor-side front pipelines."""
    circuits = _wide_circuit_workload(sizes["plan_copies"], sizes["plan_width"])
    coupling = line_topology(max(circuit.num_qubits for circuit in circuits))
    kwargs = dict(
        coverage=coverage,
        use_vf2=False,
        layout_trials=sizes["plan_layout_trials"],
        refinement_rounds=1,
        seed=43,
    )

    def run(plan, executor):
        start = time.perf_counter()
        batch = transpile_many(
            circuits, coupling, fanout="circuits", scheduler="stream",
            plan=plan, executor=executor, **kwargs,
        )
        return time.perf_counter() - start, batch

    # One fresh pool per plan mode: workers memoise payloads by content
    # digest, so reusing the local run's pool would hand the executor run
    # pre-warmed anchor/spec memos and flatter its timing.
    with ProcessExecutor() as pool:
        # Pre-warm the pool so worker start-up stays out of the timed
        # window — the bench measures parallelism, not fork cost.
        _prewarm(pool)
        local_seconds, local_batch = run("local", pool)
    with ProcessExecutor() as pool:
        _prewarm(pool)
        executor_seconds, executor_batch = run("executor", pool)

    assert batch_digests(local_batch) == batch_digests(executor_batch)
    local_dispatch = local_batch.dispatch
    executor_dispatch = executor_batch.dispatch
    assert local_dispatch["plan_mode"] == "local", local_dispatch
    if executor_dispatch["scheduler"] == "stream":
        assert executor_dispatch["plan_mode"] == "executor", executor_dispatch

    return {
        "workload": {
            "circuits": len(circuits),
            "widths": sorted({c.num_qubits for c in circuits}),
            "layout_trials": sizes["plan_layout_trials"],
        },
        "plan_local_s": round(local_seconds, 4),
        "plan_executor_s": round(executor_seconds, 4),
        "speedup_executor_plan": round(local_seconds / executor_seconds, 3),
        "plan_seconds_local": local_dispatch["plan_seconds"],
        "plan_seconds_executor": executor_dispatch["plan_seconds"],
        "plan_fraction_local": round(
            local_dispatch["plan_seconds"] / local_seconds, 4
        ),
        "dispatch_local": local_dispatch,
        "dispatch_executor": executor_dispatch,
        "digest": hashlib.sha256(
            "".join(batch_digests(local_batch)).encode()
        ).hexdigest(),
        "identical_across_plan_modes": True,
    }


def bench_route_kernel(coverage, sizes) -> dict:
    """Flat vs object routing kernel: route-stage breakdown at fixed seed.

    Both kernels must agree byte-for-byte at a fixed seed (asserted on
    every run, including CI smoke).  The timing story has two parts: the
    serial ``kernel_ratio`` (same trials, flat arrays vs object graph)
    and ``route_stage_speedup`` — the flat kernel under process-pool
    trial fan-out against the object kernel run serially, which is what
    the >=5x route-stage target measures on a multi-core host.  On a
    single-core host the JSON records the ratios without judging them.
    """
    width = sizes["wide_width"]
    circuit = qft(width)
    coupling = line_topology(width)

    def run(method, mode, executor=None):
        with _route_kernel(mode):
            start = time.perf_counter()
            result = transpile(
                circuit,
                coupling,
                method=method,
                selection="depth",
                layout_trials=sizes["layout_trials"],
                refinement_rounds=2,
                routing_trials=sizes["routing_trials"],
                coverage=coverage,
                use_vf2=False,
                seed=13,
                executor=executor,
            )
            seconds = time.perf_counter() - start
        return seconds, result

    methods = {}
    route_object = {}
    for method in ("sabre", "mirage"):
        flat_seconds, flat = run(method, "flat")
        object_seconds, obj = run(method, "object")
        digest = circuit_digest(flat.circuit)
        assert circuit_digest(obj.circuit) == digest, (
            f"{method}: flat and object kernels must route identically"
        )
        flat_route = flat.stage_seconds()["route"]
        route_object[method] = obj.stage_seconds()["route"]
        methods[method] = {
            "route_flat_s": round(flat_route, 4),
            "route_object_s": round(route_object[method], 4),
            "kernel_ratio": round(route_object[method] / flat_route, 3),
            "total_flat_s": round(flat_seconds, 4),
            "total_object_s": round(object_seconds, 4),
            "digest": digest,
            "identical_across_kernels": True,
        }

    # Flat kernel with trial fan-out: the route stage the acceptance
    # target measures.  The object baseline stays serial — it is the
    # pre-kernel reference implementation.  Workers inherit the default
    # (flat) kernel, so the pool needs no env plumbing.
    with ProcessExecutor() as pool:
        _prewarm(pool)
        _, parallel = run("mirage", "flat", pool)
    assert circuit_digest(parallel.circuit) == methods["mirage"]["digest"]
    parallel_route = parallel.stage_seconds()["route"]

    return {
        "circuit": f"qft-{width}",
        "budget": f"{sizes['layout_trials']}x{sizes['routing_trials']}",
        "methods": methods,
        "route_flat_processes_s": round(parallel_route, 4),
        "route_stage_speedup": round(
            route_object["mirage"] / parallel_route, 3
        ),
        "identical_across_kernels": True,
    }


def bench_service_overload(sizes) -> dict:
    """Service-tier overload counters on a clean multi-tenant run.

    A small coalesced burst through ``MirageService`` with no fault plan
    and no quotas: the point is the *absence* of overload events — a
    clean benchmark run must record ``shed_requests``,
    ``deadline_expirations`` and ``breaker_trips`` all zero, the same
    way the dispatch recovery counters must be zero above.  Nonzero
    values here mean the host (not the workload) was overloaded and the
    timing numbers are suspect.
    """
    from repro.service import MirageService

    width = 4
    coupling = line_topology(width)
    tenants = [("alice", ghz(width), 5), ("bob", qft(width), 6),
               ("alice", qft(width), 7), ("bob", ghz(width), 8)]

    async def run():
        async with MirageService(
            executor="threads",
            max_workers=2,
            window_ms=10.0,
            coverage_params=dict(num_samples=700, seed=7),
        ) as service:
            results = await asyncio.gather(*[
                service.submit(circuit, coupling, seed=seed, tenant=tenant,
                               use_vf2=False,
                               layout_trials=sizes["layout_trials"])
                for tenant, circuit, seed in tenants
            ])
            return results, service.stats()

    start = time.perf_counter()
    results, stats = asyncio.run(run())
    seconds = time.perf_counter() - start
    assert len(results) == len(tenants)
    return {
        "requests": stats["requests"],
        "windows": stats["windows"],
        "coalesced_requests": stats["coalesced_requests"],
        "shed_requests": stats["shed_requests"],
        "deadline_expirations": stats["deadline_expirations"],
        "breaker_trips": stats["breaker"]["trips"],
        "degraded_windows": stats["degraded_windows"],
        "breaker_state": stats["breaker"]["state"],
        "runtime_s": round(seconds, 4),
    }


def bench_remote_dispatch(coverage, sizes) -> dict:
    """Remote transport: two in-process worker hosts vs the serial run.

    The same batch engine that feeds the local executors drives
    ``RemoteExecutor`` against two ``WorkerHost`` instances over unix
    sockets.  The section pins what the distributed tier promises: the
    chosen routings are byte-identical to the serial baseline, payloads
    ship once per host (content-addressed), and on a clean run every
    recovery counter — replayed chunks (``retries``), ``reconnects``,
    ``host_downgrades``, ``frames_garbled`` — is exactly zero.  Nonzero
    values mean the loopback transport itself misbehaved and the timing
    numbers are suspect.
    """
    from repro.transpiler.remote import RemoteExecutor, WorkerHost

    circuits = _small_circuit_workload(max(1, sizes["batch_copies"] // 2))
    width = max(circuit.num_qubits for circuit in circuits)
    coupling = line_topology(width)
    kwargs = dict(
        coverage=coverage,
        use_vf2=False,
        layout_trials=sizes["batch_layout_trials"],
        refinement_rounds=2,
        seed=41,
    )

    start = time.perf_counter()
    serial = transpile_many(
        circuits, coupling, fanout="trials", executor=SerialExecutor(),
        **kwargs,
    )
    serial_seconds = time.perf_counter() - start

    hosts = [WorkerHost(heartbeat_s=0.5), WorkerHost(heartbeat_s=0.5)]
    try:
        for host in hosts:
            host.start()
        executor = RemoteExecutor(
            hosts=[host.address for host in hosts], max_streams=2
        )
        try:
            reachable = executor.prewarm()
            start = time.perf_counter()
            remote = transpile_many(
                circuits, coupling, fanout="circuits", scheduler="stream",
                executor=executor, **kwargs,
            )
            remote_seconds = time.perf_counter() - start
            dispatch = dict(remote.dispatch)
            host_meta = executor.host_meta()
        finally:
            executor.close()
    finally:
        for host in hosts:
            host.close()

    reference = batch_digests(serial)
    digest_equal = batch_digests(remote) == reference
    assert digest_equal, "remote dispatch diverged from the serial baseline"
    return {
        "workload": {
            "circuits": len(circuits),
            "widths": sorted({c.num_qubits for c in circuits}),
            "layout_trials": sizes["batch_layout_trials"],
        },
        "hosts": host_meta,
        "hosts_reachable": reachable,
        "serial_s": round(serial_seconds, 4),
        "remote_s": round(remote_seconds, 4),
        "chunks": dispatch.get("chunks", 0),
        "chunks_replayed": dispatch.get("retries", 0),
        "reconnects": dispatch.get("reconnects", 0),
        "host_downgrades": dispatch.get("host_downgrades", 0),
        "frames_garbled": dispatch.get("frames_garbled", 0),
        "bytes_shipped": dispatch.get("bytes_shipped", 0),
        "dispatch": dispatch,
        "digest_equal": digest_equal,
        "digest": hashlib.sha256("".join(reference).encode()).hexdigest(),
    }


def _assert_zero_copy(dispatch: dict, cores: int, label: str) -> None:
    """Pin the zero-copy invariants of one dispatch's provenance."""
    assert dispatch["shm_segments"] >= 1, (label, dispatch)
    assert dispatch["header_bytes"] > 0, (label, dispatch)
    budget = dispatch["header_bytes"] * max(2, cores)
    assert 0 < dispatch["bytes_copied"] <= budget, (
        f"{label}: workers should copy index headers only "
        f"(≤ {budget} B), got {dispatch['bytes_copied']} B"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small budgets)")
    parser.add_argument("--out", default="BENCH_batch_fanout.json",
                        help="output JSON path")
    parser.add_argument("--assert-shm", action="store_true",
                        help="fail unless the shared-memory transport ran "
                             "and shipped O(1) bytes per chunk")
    parser.add_argument("--assert-zero-copy", action="store_true",
                        help="fail unless workers materialised only the "
                             "out-of-band index headers (zero payload "
                             "bytes copied per worker)")
    args = parser.parse_args()
    sizes = _sizes(args.smoke)
    cores = os.cpu_count() or 1

    coverage = get_coverage_set("sqrt_iswap", num_samples=700, seed=7)

    trial = bench_trial_fanout(coverage, sizes)
    print(f"[trial-fanout]  {trial['circuit']} budget {trial['budget']}: "
          f"serial {trial['serial_s']:.2f}s, processes "
          f"{trial['processes_s']:.2f}s ({trial['speedup']:.2f}x)")

    batch = bench_batch_fanout(coverage, sizes)
    workload = batch["workload"]
    print(f"[batch-fanout]  {workload['circuits']} circuits x "
          f"{workload['layout_trials']} trials "
          f"({workload['total_trials']} pooled trials):")
    print(f"  sequential+serial       {batch['sequential_serial_s']:8.2f} s")
    print(f"  trial fan-out (proc)    {batch['trials_processes_s']:8.2f} s")
    print(f"  circuit stream (shm)    {batch['circuits_processes_s']:8.2f} s "
          f"({batch['speedup_circuits_vs_sequential']:.2f}x vs sequential, "
          f"{batch['speedup_circuits_vs_trials']:.2f}x vs trial fan-out)")
    print(f"  circuit barrier (shm)   {batch['circuits_barrier_s']:8.2f} s")
    print(f"  circuit barrier (blob)  {batch['circuits_blob_s']:8.2f} s "
          f"({batch['speedup_stream_vs_blob']:.2f}x stream-vs-blob)")
    print(f"  transport: payload ~{batch['payload_bytes_estimate']} B, "
          f"shm shipped {batch['shipped_payload_ratio']:.4f} payloads total "
          f"(blob ships 1 per chunk), overlap {batch['overlap_seconds']:.3f} s")
    print(f"  dispatch: {batch['dispatch']}")

    route = bench_route_kernel(coverage, sizes)
    print(f"[route-kernel]  {route['circuit']} budget {route['budget']}:")
    for method, entry in route["methods"].items():
        print(f"  {method:<7} route stage: flat {entry['route_flat_s']:.3f} s, "
              f"object {entry['route_object_s']:.3f} s "
              f"({entry['kernel_ratio']:.2f}x kernel ratio)")
    print(f"  flat + trial fan-out    "
          f"{route['route_flat_processes_s']:8.3f} s "
          f"({route['route_stage_speedup']:.2f}x vs object serial)")

    plan = bench_plan_fanout(coverage, sizes)
    plan_workload = plan["workload"]
    print(f"[plan-fanout]   {plan_workload['circuits']} wide circuits "
          f"(widths {plan_workload['widths']}) x "
          f"{plan_workload['layout_trials']} trials:")
    print(f"  plan=local (stream)     {plan['plan_local_s']:8.2f} s "
          f"(front pipelines {plan['plan_seconds_local']:.2f} s on the "
          f"producer thread, {100 * plan['plan_fraction_local']:.0f}% of "
          f"wall clock)")
    print(f"  plan=executor (stream)  {plan['plan_executor_s']:8.2f} s "
          f"({plan['speedup_executor_plan']:.2f}x, front pipelines on "
          f"worker cores)")
    print(f"  dispatch: {plan['dispatch_executor']}")

    service = bench_service_overload(sizes)
    print(f"[service]       {service['requests']} requests, "
          f"{service['windows']} window(s), "
          f"{service['coalesced_requests']} coalesced: "
          f"shed {service['shed_requests']}, "
          f"deadline expirations {service['deadline_expirations']}, "
          f"breaker trips {service['breaker_trips']} "
          f"({service['runtime_s']:.2f} s)")

    remote = bench_remote_dispatch(coverage, sizes)
    remote_workload = remote["workload"]
    print(f"[remote]        {remote_workload['circuits']} circuits x "
          f"{remote_workload['layout_trials']} trials over "
          f"{remote['hosts_reachable']} worker host(s): "
          f"serial {remote['serial_s']:.2f}s, remote {remote['remote_s']:.2f}s")
    print(f"  chunks {remote['chunks']} "
          f"(replayed {remote['chunks_replayed']}), "
          f"reconnects {remote['reconnects']}, "
          f"host downgrades {remote['host_downgrades']}, "
          f"garbled frames {remote['frames_garbled']}, "
          f"shipped {remote['bytes_shipped']} B, "
          f"digest equal: {remote['digest_equal']}")

    payload = {
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": cores,
            # The hostname itself stays out of the artefact; its hash
            # still distinguishes runs from different machines.
            "hostname_hash": hashlib.sha1(
                platform.node().encode()
            ).hexdigest()[:12],
            "mode": "full" if FULL else ("smoke" if args.smoke else "default"),
            "smoke": bool(args.smoke),
            "unix_time": int(time.time()),
        },
        "trial_fanout": trial,
        "batch_fanout": batch,
        "route_kernel": route,
        "plan_fanout": plan,
        "service_overload": service,
        "remote_dispatch": remote,
    }
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    # Fault-tolerance provenance: every dispatch must carry the recovery
    # counters, and a clean (fault-free) benchmark run must report them
    # all zero — retries or respawns here mean the environment, not the
    # workload, is flaky, and the timing numbers above are suspect.
    for label, dispatch in (
        ("batch-fanout stream", batch["dispatch"]),
        ("batch-fanout barrier", batch["dispatch_barrier"]),
        ("batch-fanout blob", batch["dispatch_blob"]),
        ("plan-fanout executor", plan["dispatch_executor"]),
        ("remote-dispatch", remote["dispatch"]),
    ):
        for counter in ("retries", "respawns", "lost_tasks",
                        "executor_downgrades", "transport_downgrades",
                        "deadline_expirations"):
            assert counter in dispatch, (
                f"{label}: dispatch provenance lacks {counter!r}"
            )
            assert dispatch[counter] == 0, (
                f"{label}: clean run reported {counter}="
                f"{dispatch[counter]} — recovered faults during a "
                f"benchmark invalidate its timings"
            )
    for counter in ("shed_requests", "deadline_expirations",
                    "breaker_trips", "degraded_windows"):
        assert service[counter] == 0, (
            f"service-overload: clean run reported {counter}="
            f"{service[counter]} — an overloaded host invalidates "
            f"benchmark timings"
        )
    for counter in ("chunks_replayed", "reconnects", "host_downgrades",
                    "frames_garbled"):
        assert remote[counter] == 0, (
            f"remote-dispatch: clean loopback run reported {counter}="
            f"{remote[counter]} — a flaky transport invalidates "
            f"benchmark timings"
        )
    print("fault-tolerance provenance OK: all recovery and overload "
          "counters zero")

    if args.assert_shm:
        dispatch = batch["dispatch"]
        assert batch["shm_transport"], (
            "--assert-shm requires POSIX shared memory "
            "(is MIRAGE_SHM_DISABLE set?)"
        )
        assert dispatch["shm_segments"] >= 1, dispatch
        per_chunk = dispatch["bytes_shipped"] / max(1, dispatch["chunks"])
        assert per_chunk <= 512, (
            f"shm transport should ship O(1) bytes per chunk, got "
            f"{per_chunk:.0f} B/chunk"
        )
        assert batch["shipped_payload_ratio"] <= 1.0, (
            "shm-mode dispatch should ship at most one full payload total, "
            f"got {batch['shipped_payload_ratio']} payloads"
        )
        print(f"shm transport OK: {dispatch['shm_segments']} segment(s), "
              f"{per_chunk:.0f} B/chunk, "
              f"{batch['shipped_payload_ratio']:.4f} payloads shipped")

    if args.assert_zero_copy:
        assert batch["shm_transport"], (
            "--assert-zero-copy requires POSIX shared memory "
            "(is MIRAGE_SHM_DISABLE set?)"
        )
        _assert_zero_copy(batch["dispatch"], cores, "batch-fanout stream")
        _assert_zero_copy(
            plan["dispatch_executor"], cores, "plan-fanout executor"
        )
        print(f"zero-copy OK: workers copied "
              f"{batch['dispatch']['bytes_copied']} B "
              f"(headers {batch['dispatch']['header_bytes']} B) across "
              f"{batch['dispatch']['shm_segments']} segment(s)")

    # The headline claims need real cores to show; a single-core host can
    # only validate determinism (which the digest asserts above did).
    if cores >= 4 and not args.smoke:
        assert batch["speedup_circuits_vs_sequential"] >= 1.3, (
            "circuit-level fan-out should be >=1.3x on a multi-core host, "
            f"got {batch['speedup_circuits_vs_sequential']}x on {cores} cores"
        )
        # Expected effect is modest (bounded by the planning fraction of
        # wall clock), so the gate tolerates scheduler noise: it catches
        # executor planning *regressing*, while the JSON records the
        # actual ratio for trajectory tracking.
        assert plan["speedup_executor_plan"] >= 0.95, (
            "executor-side planning should at least match local planning "
            "on a many-wide-circuits workload, got "
            f"{plan['speedup_executor_plan']}x on {cores} cores"
        )
        # Flat kernel x trial fan-out vs the object kernel run serially:
        # the route-stage acceptance target (bit-identity is asserted
        # unconditionally inside bench_route_kernel, cores or not).
        assert route["route_stage_speedup"] >= 5.0, (
            "flat routing kernel + trial fan-out should clear 5x over the "
            "serial object kernel on the route stage, got "
            f"{route['route_stage_speedup']}x on {cores} cores"
        )


if __name__ == "__main__":
    main()
