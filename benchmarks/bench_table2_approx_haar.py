"""Table II — Haar scores with approximate decomposition (Algorithm 1).

Paper values (score / fidelity):
    sqrt(iSWAP):  1.031 / 0.9895  ->  mirror 0.9950 / 0.9899
    cbrt(iSWAP):  0.9433 / 0.9904 ->  mirror 0.8900 / 0.9908
    qtrt(iSWAP):  0.9165 / 0.9906 ->  mirror 0.8453 / 0.9913
"""

from __future__ import annotations

from repro.fidelity import approximate_gate_costs

PAPER_TABLE_II = {
    ("sqrt_iswap", False): 1.031,
    ("sqrt_iswap", True): 0.9950,
    ("iswap_1_3", False): 0.9433,
    ("iswap_1_3", True): 0.8900,
    ("iswap_1_4", False): 0.9165,
    ("iswap_1_4", True): 0.8453,
}


def test_table2_approximate_haar_scores(
    benchmark, coverage_sets, small_haar_samples
):
    def run():
        rows = {}
        for key, coverage in coverage_sets.items():
            result = approximate_gate_costs(
                coverage, samples=small_haar_samples, allow_approximation=True
            )
            rows[key] = (result.haar_score, result.average_fidelity)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[table2] approximate-decomposition Haar scores vs paper")
    for key, (score, fidelity) in sorted(rows.items()):
        print(
            f"  {key[0]:<11} mirror={key[1]!s:<5} score={score:.4f} "
            f"(paper {PAPER_TABLE_II[key]}) fidelity={fidelity:.4f}"
        )
    for basis in ("sqrt_iswap", "iswap_1_3", "iswap_1_4"):
        # Approximation + mirrors is always at least as good as either alone.
        assert rows[(basis, True)][0] <= rows[(basis, False)][0] + 1e-9
