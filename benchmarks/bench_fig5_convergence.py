"""Fig. 5 — Monte-Carlo convergence of the 4th-root-iSWAP Haar score.

Four strategies (exact, approximate, each +/- mirrors) on a shared Haar
stream; the running means must be ordered exact >= approximate >=
approximate+mirrors, with exact+mirrors between.
"""

from __future__ import annotations

from repro.fidelity import strategy_comparison


def test_fig5_convergence_traces(benchmark, coverage_sets):
    exact = coverage_sets[("iswap_1_4", False)]
    mirrored = coverage_sets[("iswap_1_4", True)]

    def run():
        return strategy_comparison(exact, mirrored, num_samples=300, seed=2024)

    strategies = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[fig5] final running-mean Haar scores (4th root of iSWAP):")
    for name, result in strategies.items():
        trace = result.running_mean()
        print(f"  {name:<20} {trace[-1]:.4f}")
    assert (
        strategies["approximate+mirrors"].haar_score
        <= strategies["approximate"].haar_score + 1e-9
    )
    assert (
        strategies["exact+mirrors"].haar_score
        <= strategies["exact"].haar_score + 1e-9
    )
    assert (
        strategies["approximate"].haar_score
        <= strategies["exact"].haar_score + 1e-9
    )
