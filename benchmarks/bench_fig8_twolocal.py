"""Fig. 8 — fully entangling TwoLocal ansatz on a 4-qubit line.

Paper: Qiskit level-3 needs 16 sqrt(iSWAP) pulses (3 SWAPs); MIRAGE finds a
10-pulse, SWAP-free implementation.
"""

from __future__ import annotations

from repro.circuits.library import twolocal_full
from repro.core import transpile
from repro.transpiler import line_topology


def test_fig8_twolocal_line(benchmark, sqrt_iswap_coverage):
    circuit = twolocal_full(4)
    line = line_topology(4)

    def run():
        sabre = transpile(circuit, line, method="sabre", selection="swaps",
                          layout_trials=4, use_vf2=False, seed=3,
                          coverage=sqrt_iswap_coverage)
        mirage = transpile(circuit, line, method="mirage", selection="depth",
                           layout_trials=4, use_vf2=False, seed=3,
                           coverage=sqrt_iswap_coverage)
        return sabre, mirage

    sabre, mirage = benchmark.pedantic(run, rounds=1, iterations=1)
    sabre_pulses = sabre.metrics.depth / 0.5
    mirage_pulses = mirage.metrics.depth / 0.5
    print(
        f"\n[fig8] baseline: {sabre_pulses:.0f} pulses, {sabre.swaps_added} swaps "
        f"(paper 16 / 3); MIRAGE: {mirage_pulses:.0f} pulses, {mirage.swaps_added} swaps "
        f"(paper 10 / 0)"
    )
    assert mirage_pulses <= 12
    assert mirage.swaps_added == 0
    assert mirage.metrics.depth < sabre.metrics.depth
