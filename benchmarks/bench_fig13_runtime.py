"""Fig. 13 — transpiler runtime scaling on QFT circuits and cache effectiveness.

Paper: on a 64-qubit QFT the Python MIRAGE implementation is ~47.9% faster
than Python Qiskit-SABRE thanks to coordinate caching and the removal of
matrix checks.  The bench measures our SABRE vs MIRAGE wall-clock on a QFT
width sweep (reduced sizes) and reports the coordinate-cache hit rate.
"""

from __future__ import annotations

import time

from repro.circuits.library import qft
from repro.core import transpile
from repro.polytopes.cache import GLOBAL_COORDINATE_CACHE
from repro.transpiler import square_lattice_topology

WIDTHS = (8, 12, 16)


def test_fig13_runtime_scaling(benchmark, sqrt_iswap_coverage):
    lattice = square_lattice_topology(4)

    def run():
        rows = []
        for width in WIDTHS:
            circuit = qft(width)
            start = time.perf_counter()
            transpile(circuit, lattice, method="sabre", selection="swaps",
                      layout_trials=1, refinement_rounds=1, use_vf2=False,
                      seed=2, coverage=sqrt_iswap_coverage)
            sabre_time = time.perf_counter() - start
            start = time.perf_counter()
            mirage = transpile(circuit, lattice, method="mirage",
                               selection="depth", layout_trials=1,
                               refinement_rounds=1, use_vf2=False,
                               seed=2, coverage=sqrt_iswap_coverage)
            mirage_time = time.perf_counter() - start
            rows.append((width, sabre_time, mirage_time, mirage.stage_seconds()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[fig13] qft width, sabre runtime (s), mirage runtime (s)")
    for width, sabre_time, mirage_time, _ in rows:
        print(f"  n={width:<3d} {sabre_time:8.2f} {mirage_time:8.2f}")
    widest = rows[-1]
    print(f"  per-stage seconds (mirage, n={widest[0]}):")
    for name, seconds in widest[3].items():
        print(f"    {name:<12} {seconds:8.3f}")
    info = GLOBAL_COORDINATE_CACHE.info()
    total = info["hits"] + info["misses"]
    hit_rate = info["hits"] / total if total else 0.0
    print(f"  coordinate cache: {info['hits']} hits / {info['misses']} misses "
          f"({hit_rate:.0%} hit rate)")
    # MIRAGE's runtime stays within 2x of the baseline on every width (the
    # paper reports it being faster; the exact ratio depends on trial budget).
    for _, sabre_time, mirage_time, _stages in rows:
        assert mirage_time < 2.5 * sabre_time + 0.5
