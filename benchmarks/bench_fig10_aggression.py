"""Fig. 10 — fixed aggression levels vs Qiskit on representative circuits.

The paper shows that no single aggression level wins on every circuit,
motivating the mixed 5/45/45/5 schedule.  A reduced-size version of the
circuits is used to keep the pure-Python bench fast; the shape of the
result (every level beats or ties the baseline, and the best level differs
per circuit) is what is being reproduced.
"""

from __future__ import annotations

from repro.circuits.library import benchmark_circuit
from repro.core import transpile
from repro.transpiler import square_lattice_topology

CIRCUITS = {
    "wstate": benchmark_circuit("wstate", 10),
    "bigadder": benchmark_circuit("bigadder", 11),
    "qft": benchmark_circuit("qft", 8),
    "bv": benchmark_circuit("bv", 12),
}
LATTICE = square_lattice_topology(4)


def test_fig10_aggression_levels(benchmark, sqrt_iswap_coverage):
    def run():
        table: dict[str, dict[str, float]] = {}
        for name, circuit in CIRCUITS.items():
            row = {}
            baseline = transpile(circuit, LATTICE, method="sabre", selection="swaps",
                                 layout_trials=2, use_vf2=False, seed=9,
                                 coverage=sqrt_iswap_coverage)
            row["qiskit"] = baseline.metrics.depth
            for level in range(4):
                result = transpile(circuit, LATTICE, method="mirage", selection="depth",
                                   aggression=level, layout_trials=2, use_vf2=False,
                                   seed=9, coverage=sqrt_iswap_coverage)
                row[f"a{level}"] = result.metrics.depth
            table[name] = row
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[fig10] average depth by aggression level (reduced-size circuits)")
    header = ["circuit", "qiskit", "a0", "a1", "a2", "a3"]
    print("  " + "  ".join(f"{h:>9}" for h in header))
    for name, row in table.items():
        print("  " + f"{name:>9}  " + "  ".join(f"{row[k]:>9.1f}" for k in header[1:]))
        best_mirage = min(row[f"a{level}"] for level in range(4))
        assert best_mirage <= row["qiskit"] + 1e-9
