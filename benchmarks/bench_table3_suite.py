"""Table III — benchmark-suite inventory (name, qubits, 2Q gates, class)."""

from __future__ import annotations

from repro.circuits.library.suite import suite_inventory

PAPER_QUBITS = {
    "wstate": 27, "qftentangled": 16, "qpeexact": 16, "ae": 16, "qft": 18,
    "bv": 30, "multiplier": 15, "bigadder": 18, "qec9xz": 17, "seca": 11,
    "qram": 20, "sat": 11, "portfolioqaoa": 16, "knn": 25, "swap_test": 25,
}


def test_table3_suite_inventory(benchmark):
    rows = benchmark.pedantic(suite_inventory, rounds=1, iterations=1)
    print("\n[table3] name, qubits, 2Q gates, class")
    for row in rows:
        print(f"  {row['name']:<20} {row['qubits']:>3} {row['two_qubit_gates']:>5}  {row['class']}")
    assert len(rows) == len(PAPER_QUBITS)
    for row in rows:
        base_name = row["name"].split("_n")[0]
        assert base_name in PAPER_QUBITS
        # Qubit counts match the paper within the generator's register rounding.
        assert abs(row["qubits"] - PAPER_QUBITS[base_name]) <= 1
        assert row["two_qubit_gates"] > 0
