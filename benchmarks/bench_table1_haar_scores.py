"""Table I — exact-decomposition Haar scores and fidelities, +/- mirrors.

Paper values (score / fidelity):
    sqrt(iSWAP):   1.105 / 0.9890   ->  mirror 1.029 / 0.9897
    cbrt(iSWAP):   0.9907 / 0.9901  ->  mirror 0.9545 / 0.9904
    qtrt(iSWAP):   0.9599 / 0.9904  ->  mirror 0.8997 / 0.9910
"""

from __future__ import annotations

from repro.polytopes import haar_score

PAPER_TABLE_I = {
    ("sqrt_iswap", False): (1.105, 0.9890),
    ("sqrt_iswap", True): (1.029, 0.9897),
    ("iswap_1_3", False): (0.9907, 0.9901),
    ("iswap_1_3", True): (0.9545, 0.9904),
    ("iswap_1_4", False): (0.9599, 0.9904),
    ("iswap_1_4", True): (0.8997, 0.9910),
}


def test_table1_haar_scores(benchmark, coverage_sets, haar_samples):
    def run():
        rows = {}
        for key, coverage in coverage_sets.items():
            result = haar_score(coverage, samples=haar_samples)
            rows[key] = (result.score, result.average_fidelity)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n[table1] basis, mirrored -> (score, fidelity) vs paper")
    for key, (score, fidelity) in sorted(rows.items()):
        paper_score, paper_fid = PAPER_TABLE_I[key]
        print(
            f"  {key[0]:<11} mirror={key[1]!s:<5} score={score:.4f} (paper {paper_score}) "
            f"fidelity={fidelity:.4f} (paper {paper_fid})"
        )
        # Shape check: within ~8% of the paper's Haar score.
        assert abs(score - paper_score) / paper_score < 0.08
    # Mirrors always improve the score for the iSWAP family.
    for basis in ("sqrt_iswap", "iswap_1_3", "iswap_1_4"):
        assert rows[(basis, True)][0] < rows[(basis, False)][0]
